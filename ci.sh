#!/usr/bin/env bash
# CI entry point: the tier-1 build + test sweep (warnings are errors), the
# example programs, a lint sweep of every shipped input file, a
# nondeterminism grep-gate over shipped sources, a schedule-certificate
# sweep (every emitted soc/field schedule must re-certify; the seeded-bad
# corpus in tests/lint_cases/ must be rejected), a serve
# pipe-transport smoke against the committed golden responses, a
# ThreadSanitizer build that exercises the parallel engines (test_campaign +
# test_soc + test_field + test_serve + test_backend — test_campaign covers
# the packed kernel under threads, test_serve the session pool and shared
# caches, test_backend the sharded memtest engine) for
# data races, an Address+UndefinedBehaviorSanitizer build of
# the linter, controller, fuzz, campaign, and backend suites (the
# scalar/packed equivalence sweep under ASan pins the packed kernel's lane
# bookkeeping; test_backend pins the mmap'd hostram path),
# and (when clang-tidy is installed) a
# static-analysis pass over the lint subsystem.  Mirrors
# .github/workflows/ci.yml so the pipeline can be reproduced locally with a
# single command.
set -euo pipefail
cd "$(dirname "$0")"

JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 2)"

echo "== tier 1: build + full test suite (-Werror) =="
cmake -B build -S . -DCMAKE_BUILD_TYPE=Release -DPMBIST_WERROR=ON \
  -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
cmake --build build -j "${JOBS}"
ctest --test-dir build --output-on-failure -j "${JOBS}"

echo "== examples (end-to-end API walkthroughs) =="
for ex in quickstart fault_diagnosis custom_algorithm multiport_word \
          online_test repair_flow soc_schedule; do
  echo "-- ${ex}"
  ./build/examples/"${ex}" > /dev/null
done

echo "== lint sweep: every shipped march / image / chip / profile file =="
for f in examples/*.chip examples/*.march examples/*.hex; do
  echo "-- pmbist lint ${f}"
  ./build/tools/pmbist lint "${f}" > /dev/null
done
for f in examples/*.profile; do
  echo "-- pmbist lint ${f} --chip examples/soc_demo.chip"
  ./build/tools/pmbist lint "${f}" --chip examples/soc_demo.chip > /dev/null
done

echo "== nondeterminism gate: no unseeded RNG / wall clock in src/ tools/ =="
# Every engine result must be a pure function of its inputs and explicit
# seeds; these primitives are how nondeterminism sneaks in.  Seeded
# std::mt19937 in tests/benches is fine — this gate covers shipped code.
if grep -rnE '\brand\(|time\(nullptr|std::random_device' src tools; then
  echo "ci.sh: nondeterministic primitive in shipped code (seed it instead)" >&2
  exit 1
fi
# Pointer-keyed ordered containers iterate in allocation order — a
# nondeterminism source the RNG grep cannot see.  The lint subsystem's
# diagnostics are ordering-sensitive (stable codes, pinned golden output),
# so key on indices or names there instead.
if grep -rnE 'std::(map|set)<[^,>]*\*' src/lint; then
  echo "ci.sh: pointer-keyed ordered container in src/lint (iteration order follows allocation; key on indices or names)" >&2
  exit 1
fi

echo "== schedule certificates: emit -> re-certify every example =="
mkdir -p build/certify
./build/tools/pmbist soc --jobs 2 --certify \
  --emit-schedule build/certify/demo.schedule > /dev/null
for chip in examples/*.chip; do
  base="$(basename "${chip}" .chip)"
  ./build/tools/pmbist soc --chip "${chip}" --jobs 2 --certify \
    --emit-schedule "build/certify/${base}.schedule" > /dev/null
  ./build/tools/pmbist lint "build/certify/${base}.schedule" \
    --chip "${chip}" > /dev/null
done
./build/tools/pmbist field --chip examples/soc_demo.chip \
  --profile examples/soc_demo.profile --jobs 2 --certify \
  --emit-schedule build/certify/soc_demo.fieldsched > /dev/null
./build/tools/pmbist lint build/certify/soc_demo.fieldsched \
  --chip examples/soc_demo.chip --profile examples/soc_demo.profile > /dev/null

echo "== schedule certificates: seeded-bad corpus must be rejected =="
for f in tests/lint_cases/*.schedule tests/lint_cases/*.fieldsched; do
  ctx=(--chip examples/soc_demo.chip --profile examples/soc_demo.profile)
  if [[ "$(basename "${f}")" == soc_demo.* ]]; then
    echo "-- ${f} (baseline, must certify clean)"
    ./build/tools/pmbist lint "${f}" "${ctx[@]}" > /dev/null
  else
    echo "-- ${f} (seeded corruption, must be rejected)"
    if ./build/tools/pmbist lint "${f}" "${ctx[@]}" > /dev/null 2>&1; then
      echo "ci.sh: ${f} certified clean but is a seeded-bad case" >&2
      exit 1
    fi
  fi
done

echo "== serve smoke: deterministic pipe transport vs committed golden =="
./build/tools/pmbist serve < tests/serve_golden/requests.ndjson \
  | diff - tests/serve_golden/responses.golden

echo "== memtest smoke: march the host RAM (64 MiB, one pass) =="
./build/tools/pmbist memtest --size 64M --passes 1 > /dev/null

echo "== self-checking benches (determinism + scheduling gates included) =="
./build/bench/bench_fault_coverage
./build/bench/bench_campaign
./build/bench/bench_qualifier
./build/bench/bench_soc_schedule
./build/bench/bench_field
./build/bench/bench_serve
./build/bench/bench_backend

echo "== tsan: parallel engines + serve session pool =="
cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DPMBIST_WERROR=ON \
  -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-omit-frame-pointer" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread"
cmake --build build-tsan -j "${JOBS}" --target test_campaign --target test_soc \
  --target test_field --target test_serve --target test_backend
./build-tsan/tests/test_campaign
./build-tsan/tests/test_soc
./build-tsan/tests/test_field
./build-tsan/tests/test_serve
./build-tsan/tests/test_backend

echo "== asan+ubsan: linter, controllers, fuzz, packed-kernel equivalence =="
cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DPMBIST_WERROR=ON \
  -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all -fno-omit-frame-pointer" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined"
cmake --build build-asan -j "${JOBS}" \
  --target test_lint --target test_fuzz --target test_ucode --target test_pfsm \
  --target test_campaign --target test_backend
./build-asan/tests/test_lint
./build-asan/tests/test_fuzz
./build-asan/tests/test_ucode
./build-asan/tests/test_pfsm
./build-asan/tests/test_campaign
./build-asan/tests/test_backend

if command -v clang-tidy > /dev/null; then
  echo "== clang-tidy: src/ tools/ tests/ =="
  # tools/ and tests/ carry their own .clang-tidy with the pinned
  # suppressions for CLI/gtest idioms; src/ uses the root profile.
  clang-tidy -p build --warnings-as-errors='*' \
    src/*/*.cpp tools/*.cpp tests/*.cpp
else
  echo "== clang-tidy not installed; skipping (runs in the workflow) =="
fi

echo "== ci.sh: all green =="
