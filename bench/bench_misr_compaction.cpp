// Extension experiment: comparator vs MISR response compaction.
//
// The paper's diagnostics-oriented BIST keeps a deterministic comparator
// (per-cycle expected data, exact failure capture).  Signature compaction
// is the classic area/observability trade: this bench measures both
// datapaths' area across word widths and the detection behaviour of the
// signature (no escapes vs the comparator across a fault zoo; measured
// aliasing at small widths).

#include "bench_common.h"
#include "bist/misr.h"
#include "march/coverage.h"
#include "mbist_ucode/controller.h"

int main() {
  using namespace pmbist;
  using namespace pmbist::bench;
  const auto lib = netlist::TechLibrary::cmos5s();

  Checker c;

  std::printf("=== Response observation datapath: comparator vs MISR ===\n\n");
  std::printf("  %8s %18s %14s\n", "width", "comparator (GE)", "MISR (GE)");
  for (int w : {1, 4, 8, 16, 32}) {
    const double cmp = bist::Comparator::area(w).total_ge(lib);
    const double misr = bist::Misr::area(w).total_ge(lib);
    std::printf("  %8d %18.1f %14.1f\n", w, cmp, misr);
  }
  std::printf("\n  (the MISR holds state: it pays %0.2f GE/bit in scan "
              "flip-flops, but\n   needs no per-cycle expected-data "
              "distribution and one final compare)\n\n",
              lib.ge(netlist::Cell::ScanDff));

  // Detection parity vs the comparator across the fault zoo.
  const memsim::MemoryGeometry g{.address_bits = 4, .word_bits = 4,
                                 .num_ports = 1};
  const auto alg = march::march_c_plus_plus();

  auto run_zoo = [&](int width, int* detected, int* aliased) {
    const auto golden = bist::golden_signature(alg, g, width);
    mbist_ucode::MicrocodeController ctrl{{.geometry = g}};
    ctrl.load_algorithm(alg);
    *detected = 0;
    *aliased = 0;
    for (auto cls : memsim::all_fault_classes()) {
      for (const auto& fault : march::make_fault_universe(cls, g, 3, 16)) {
        memsim::FaultyMemory mem{g, 5};
        mem.add_fault(fault);
        const auto r = bist::run_session_misr(ctrl, mem, width, golden);
        if (!r.session.passed()) {
          ++*detected;
          if (r.signature_pass()) ++*aliased;
        }
      }
    }
  };

  std::printf("  aliasing vs MISR width (March C++ fault zoo):\n");
  std::printf("  %8s %10s %10s %12s\n", "width", "detected", "aliased",
              "escape rate");
  int detected16 = 0, aliased16 = 0;
  for (int w : {2, 4, 8, 16}) {
    int detected = 0, aliased = 0;
    run_zoo(w, &detected, &aliased);
    std::printf("  %8d %10d %10d %11.2f%%\n", w, detected, aliased,
                100.0 * aliased / std::max(detected, 1));
    if (w == 16) {
      detected16 = detected;
      aliased16 = aliased;
    }
  }
  std::printf("\n");

  c.check(detected16 > 80, "the zoo exercises a meaningful fault count");
  c.check(aliased16 == 0,
          "a 16-bit MISR shows no aliasing on the zoo (2^-16 per run)");
  c.check(bist::Misr::area(8).total_ge(lib) >
              bist::Comparator::area(8).total_ge(lib),
          "the MISR costs more logic than the comparator at equal width — "
          "its win is wiring/expected-data distribution, not gates");

  // Fault-free runs always match the predicted signature.
  const auto golden = bist::golden_signature(alg, g, 16);
  mbist_ucode::MicrocodeController ctrl{{.geometry = g}};
  ctrl.load_algorithm(alg);
  memsim::SramModel good{g, 123};
  const auto r = bist::run_session_misr(ctrl, good, 16, golden);
  c.check(r.signature_pass() && r.session.passed(),
          "fault-free signature equals the predicted golden signature");

  return c.finish("bench_misr_compaction");
}
