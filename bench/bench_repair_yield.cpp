// Extension experiment: repair yield vs defect density.
//
// The production payoff of BIST diagnostics (the paper's Sec. 1 argument)
// is redundancy repair: the fail bitmap feeds the redundancy analyzer and
// defective dies become sellable.  This bench sweeps the defect count on a
// 16x16 array with 2 spare rows + 2 spare columns and measures the
// fraction of dies the full inject->BIST->bitmap->allocate->repair->retest
// loop recovers.

#include "bench_common.h"
#include "bist/session.h"
#include "march/expand.h"
#include "mbist_ucode/controller.h"
#include "repair/repaired_memory.h"

int main() {
  using namespace pmbist;
  using namespace pmbist::bench;
  using memsim::Address;

  const memsim::MemoryGeometry geom{.address_bits = 8, .word_bits = 1,
                                    .num_ports = 1};
  const memsim::ArrayTopology topo{
      8, 4, memsim::AddressScrambler::scrambled(8, 99)};
  const repair::RedundancyConfig config{.spare_rows = 2, .spare_cols = 2};
  constexpr int kDiesPerPoint = 40;

  mbist_ucode::MicrocodeController bist{{.geometry = geom}};
  bist.load_algorithm(march::march_c());

  std::printf("=== Repair yield vs defect count (256x1 array, 2+2 spares, "
              "%d dies/point) ===\n\n",
              kDiesPerPoint);
  std::printf("  %8s %10s %10s %12s\n", "defects", "repaired", "verified",
              "yield");

  Checker c;
  std::uint64_t rng_state = 12345;
  auto rnd = [&rng_state]() {
    rng_state = rng_state * 6364136223846793005ull + 1442695040888963407ull;
    return rng_state >> 33;
  };

  double prev_yield = 1.1;
  bool roughly_monotone = true;
  int yield1 = 0;
  double yield12 = 1.0;
  for (int defects : {1, 2, 3, 4, 6, 8, 12}) {
    int repaired = 0;
    int verified = 0;
    for (int die = 0; die < kDiesPerPoint; ++die) {
      memsim::FaultyMemory defective{geom, rnd()};
      for (int d = 0; d < defects; ++d) {
        const auto addr = static_cast<Address>(rnd() % geom.num_words());
        if (rnd() & 1)
          defective.add_fault(memsim::StuckAtFault{{addr, 0}, (rnd() & 1) != 0});
        else
          defective.add_fault(memsim::TransitionFault{{addr, 0}, (rnd() & 1) != 0});
      }
      const auto before =
          bist::run_session(bist, defective, {.max_failures = 1024});
      if (before.passed()) {
        // Duplicate-address faults can cancel observable behaviour; count
        // as trivially good die.
        ++repaired;
        ++verified;
        continue;
      }
      diag::FailBitmap bm{geom};
      bm.accumulate(before.failures);
      const auto solution = repair::allocate_redundancy(bm, topo, config);
      if (!solution.repairable) continue;
      ++repaired;
      repair::RepairedMemory fixed{defective, topo, solution};
      if (bist::run_session(bist, fixed).passed()) ++verified;
    }
    const double yield = static_cast<double>(verified) / kDiesPerPoint;
    std::printf("  %8d %10d %10d %11.1f%%\n", defects, repaired, verified,
                100.0 * yield);
    if (defects == 1) yield1 = verified;
    if (defects == 12) yield12 = yield;
    if (yield > prev_yield + 0.101) roughly_monotone = false;
    prev_yield = yield;
    c.check(verified == repaired,
            std::to_string(defects) +
                " defects: every allocated repair passes the retest");
  }
  std::printf("\n");

  c.check(yield1 == kDiesPerPoint, "single defects are always repairable");
  c.check(yield12 < 1.0,
          "beyond the spare budget, unrepairable dies appear");
  c.check(roughly_monotone, "yield decays (roughly) with defect density");

  return c.finish("bench_repair_yield");
}
