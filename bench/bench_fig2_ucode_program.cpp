// Figure 2 reproduction: the microcode program for March C.
//
// The paper's figure shows the instruction-field definition and the
// nine-instruction March C encoding that exploits the Repeat/reference-
// register mechanism: one initializing element, the two symmetric up
// elements, a Repeat instruction carrying the complement mask (address
// order only, for March C), the final read sweep, and the data/port loop
// tail.  This bench regenerates the program, prints the listing, and
// verifies it cycle-accurately against the reference expansion.

#include "bench_common.h"
#include "bist/controller.h"
#include "march/expand.h"
#include "mbist_ucode/controller.h"

int main() {
  using namespace pmbist;
  using namespace pmbist::bench;
  using mbist_ucode::Flow;

  std::printf("=== Figure 2: March C microcode program ===\n\n");
  const auto alg = march::march_c();
  const auto result = mbist_ucode::assemble(alg);
  std::printf("%s\n", result.program.listing().c_str());

  Checker c;
  const auto& code = result.program.instructions();
  c.check(code.size() == 9, "March C encodes in 9 instructions (Fig. 2)");
  c.check(result.used_repeat, "the symmetric encoding uses Repeat");
  c.check(code.size() >= 6 && code[5].flow == Flow::Repeat &&
              code[5].addr_down && !code[5].data_inv && !code[5].cmp_inv,
          "the Repeat instruction complements only the address order");
  c.check(code.back().flow == Flow::LoopPort &&
              code[code.size() - 2].flow == Flow::LoopData,
          "instructions 8 and 9 are the data-background and port loops");

  // Without the symmetric encoding the same algorithm costs 12
  // instructions — the saving the reference register buys (the Repeat
  // replaces the four instructions of the mirrored down elements).
  const auto flat = mbist_ucode::assemble(
      alg, {.symmetric_encoding = false});
  std::printf("flat encoding (no Repeat): %d instructions\n\n",
              flat.program.size());
  c.check(flat.program.size() == 12,
          "the flat encoding costs 12 instructions (Repeat saves 3 slots "
          "net: 4 mirrored instructions collapse into 1 Repeat)");

  // Cycle-accurate check against the semantic ground truth.
  mbist_ucode::MicrocodeController ctrl{
      {.geometry = kBitOriented, .storage_depth = kUcodeDepth}};
  ctrl.load(result.program);
  const auto stream = bist::collect_ops(ctrl, 1'000'000);
  c.check(stream == march::expand(alg, kBitOriented),
          "the 9-instruction program replays March C exactly (1K cells, "
          "10240 operations)");

  return c.finish("bench_fig2_ucode_program");
}
