#pragma once
// Shared helpers for the table/figure reproduction benches: fixed paper
// configurations, formatting, and a self-check harness that turns each
// bench into a regression gate (non-zero exit when a reproduced shape
// claim fails).

#include <cstdio>
#include <cstdlib>
#include <string>

#include "march/library.h"
#include "mbist_hardwired/area.h"
#include "mbist_pfsm/area.h"
#include "mbist_ucode/area.h"
#include "netlist/tech_library.h"

namespace pmbist::bench {

/// The paper's memory configurations: Section 3 evaluates bit-oriented
/// single-port memories first (Table 1), then word-oriented and multiport
/// extensions (Table 2).  1K words is a representative embedded-array size.
inline constexpr memsim::MemoryGeometry kBitOriented{
    .address_bits = 10, .word_bits = 1, .num_ports = 1};
inline constexpr memsim::MemoryGeometry kWordOriented{
    .address_bits = 10, .word_bits = 8, .num_ports = 1};
inline constexpr memsim::MemoryGeometry kMultiport{
    .address_bits = 10, .word_bits = 8, .num_ports = 2};

/// Storage sizing used throughout: the microcode unit holds 32 10-bit
/// instructions (enough for every library algorithm including the ++
/// variants with the data/port loop tail); the pFSM buffer holds 16 9-bit
/// instructions (enough for every SM-mappable algorithm).
inline constexpr int kUcodeDepth = 32;
inline constexpr int kPfsmDepth = 16;

/// Self-check bookkeeping.
class Checker {
 public:
  void check(bool ok, const std::string& claim) {
    ++total_;
    if (ok) {
      std::printf("  [ok]   %s\n", claim.c_str());
    } else {
      ++failed_;
      std::printf("  [FAIL] %s\n", claim.c_str());
    }
  }

  /// Prints the verdict; returns the process exit code.
  int finish(const char* bench_name) {
    std::printf("\n%s: %d/%d reproduction checks passed\n", bench_name,
                total_ - failed_, total_);
    return failed_ == 0 ? EXIT_SUCCESS : EXIT_FAILURE;
  }

 private:
  int total_ = 0;
  int failed_ = 0;
};

struct MethodArea {
  std::string method;
  std::string flexibility;
  double ge;
  double um2;
};

/// Computes the (method x area) rows of Tables 1/2 for one geometry.
/// `adjusted_storage` selects Table 3's scan-only microcode storage cells.
inline std::vector<MethodArea> method_areas(
    const memsim::MemoryGeometry& geometry, bool adjusted_storage) {
  const auto lib = netlist::TechLibrary::cmos5s();
  std::vector<MethodArea> rows;

  mbist_ucode::AreaConfig uc{.geometry = geometry,
                             .storage_depth = kUcodeDepth};
  if (adjusted_storage)
    uc.storage_cell = netlist::StorageCellClass::ScanOnly;
  const auto ur = mbist_ucode::microcode_area(uc);
  rows.push_back({adjusted_storage ? "Microcode-Based (adj.)"
                                   : "Microcode-Based",
                  "HIGH", ur.total_ge(lib), ur.total_area_um2(lib)});

  const auto pr = mbist_pfsm::pfsm_area(
      {.geometry = geometry, .buffer_depth = kPfsmDepth});
  rows.push_back(
      {"Prog. FSM-Based", "MEDIUM", pr.total_ge(lib), pr.total_area_um2(lib)});

  for (const auto& alg : march::paper_table_algorithms()) {
    const auto hr = mbist_hardwired::hardwired_area(alg, {.geometry = geometry});
    rows.push_back(
        {alg.name(), "LOW", hr.total_ge(lib), hr.total_area_um2(lib)});
  }
  return rows;
}

inline void print_area_table(const char* title,
                             const std::vector<MethodArea>& rows) {
  std::printf("%s\n", title);
  std::printf("  %-24s %-8s %14s %14s\n", "Method", "Flex.",
              "Int. Area (GE)", "Size (um^2)");
  for (const auto& r : rows)
    std::printf("  %-24s %-8s %14.1f %14.0f\n", r.method.c_str(),
                r.flexibility.c_str(), r.ge, r.um2);
  std::printf("\n");
}

inline double row_ge(const std::vector<MethodArea>& rows,
                     const std::string& method) {
  for (const auto& r : rows)
    if (r.method == method) return r.ge;
  std::fprintf(stderr, "missing row: %s\n", method.c_str());
  std::abort();
}

}  // namespace pmbist::bench
