// Extension experiment D: storage-sizing ablations for the design choices
// DESIGN.md calls out.
//
//  D1  Symmetric (Repeat) encoding: instruction counts per algorithm with
//      and without the reference-register fold, and the storage area the
//      fold saves (the Repeat hardware costs one reference register + one
//      instruction slot; it saves k instructions per symmetric pair).
//  D2  Microcode depth (Z) sweep: unit area vs. the algorithm families a
//      given Z can host.
//  D3  pFSM buffer-depth sweep: the full-rate buffer dominates the unit,
//      so depth is the pFSM's primary cost knob.

#include <cstdio>

#include "bench_common.h"
#include "mbist_pfsm/compiler.h"
#include "mbist_ucode/assembler.h"

int main() {
  using namespace pmbist;
  using namespace pmbist::bench;
  const auto lib = netlist::TechLibrary::cmos5s();

  Checker c;

  // --- D1: symmetric encoding ----------------------------------------------
  std::printf("=== D1: Repeat/reference-register encoding ===\n\n");
  std::printf("  %-14s %10s %10s %8s\n", "algorithm", "folded", "flat",
              "saved");
  int max_folded = 0;
  int max_flat = 0;
  for (const auto& alg : march::all_algorithms()) {
    const auto folded = mbist_ucode::assemble(alg);
    const auto flat =
        mbist_ucode::assemble(alg, {.symmetric_encoding = false});
    std::printf("  %-14s %10d %10d %8d\n", alg.name().c_str(),
                folded.program.size(), flat.program.size(),
                flat.program.size() - folded.program.size());
    max_folded = std::max(max_folded, folded.program.size());
    max_flat = std::max(max_flat, flat.program.size());
    if (folded.used_repeat)
      c.check(folded.program.size() < flat.program.size(),
              alg.name() + ": the fold shrinks the program");
  }
  std::printf("\n  worst-case storage depth: folded Z=%d, flat Z=%d\n",
              max_folded, max_flat);
  c.check(max_folded <= 32 && max_flat > 32,
          "the fold is what lets every algorithm fit the Z=32 storage unit");

  // The area value of the fold: storage sized for the worst case.
  auto unit_ge = [&](int z) {
    return mbist_ucode::microcode_area(
               {.geometry = kBitOriented, .storage_depth = z})
        .total_ge(lib);
  };
  const double folded_area = unit_ge(max_folded);
  const double flat_area = unit_ge(max_flat);
  std::printf("  unit area at worst-case depth: folded %.1f GE, flat %.1f "
              "GE (%.1f%% saved)\n\n",
              folded_area, flat_area,
              100.0 * (flat_area - folded_area) / flat_area);
  c.check(folded_area < flat_area,
          "symmetric encoding pays for the reference register many times "
          "over");

  // --- D2: microcode depth sweep ---------------------------------------------
  std::printf("=== D2: microcode storage depth (Z) sweep ===\n\n");
  std::printf("  %4s %12s %12s   hosted algorithms\n", "Z", "full (GE)",
              "adj. (GE)");
  for (int z : {8, 12, 16, 24, 32, 48}) {
    mbist_ucode::AreaConfig cfg{.geometry = kBitOriented, .storage_depth = z};
    const double full = mbist_ucode::microcode_area(cfg).total_ge(lib);
    cfg.storage_cell = netlist::StorageCellClass::ScanOnly;
    const double adj = mbist_ucode::microcode_area(cfg).total_ge(lib);
    int hosted = 0;
    for (const auto& alg : march::all_algorithms())
      if (mbist_ucode::assemble(alg).program.size() <= z) ++hosted;
    std::printf("  %4d %12.1f %12.1f   %d/%zu\n", z, full, adj, hosted,
                march::all_algorithms().size());
  }
  std::printf("\n");
  c.check(unit_ge(16) < unit_ge(32), "unit area is monotone in Z");

  // --- D3: pFSM buffer depth sweep --------------------------------------------
  std::printf("=== D3: pFSM buffer depth sweep ===\n\n");
  std::printf("  %6s %12s   hosted algorithms\n", "depth", "unit (GE)");
  double prev = 0;
  bool monotone = true;
  for (int depth : {8, 10, 12, 16, 24}) {
    const double ge =
        mbist_pfsm::pfsm_area({.geometry = kBitOriented,
                               .buffer_depth = depth})
            .total_ge(lib);
    int hosted = 0;
    for (const auto& alg : march::all_algorithms()) {
      if (!mbist_pfsm::is_mappable(alg)) continue;
      if (mbist_pfsm::compile(alg).program.size() <= depth) ++hosted;
    }
    std::printf("  %6d %12.1f   %d/%zu\n", depth, ge, hosted,
                march::all_algorithms().size());
    if (ge <= prev) monotone = false;
    prev = ge;
  }
  std::printf("\n");
  c.check(monotone, "pFSM unit area is monotone in buffer depth");

  return c.finish("bench_ablation_storage");
}
