// Extension experiment: the test-length / guaranteed-coverage frontier.
//
// Each march algorithm buys a set of *guaranteed* fault-class detections
// (the static qualifier's G verdicts) for a price in operations per cell.
// A test engineer with a programmable controller picks a point on this
// frontier per test phase — wafer sort wants short tests, final test wants
// coverage, burn-in adds retention.  This bench prints the frontier and
// checks that the library is well-formed: no algorithm is strictly
// dominated by a *shorter* one (every extra operation buys something —
// except the deliberately redundant teaching variants).

#include <algorithm>
#include <map>
#include <set>

#include "bench_common.h"
#include "march/analysis.h"

int main() {
  using namespace pmbist;
  using namespace pmbist::bench;
  using march::Detection;

  struct Point {
    std::string name;
    int ops;
    int guaranteed;
    std::set<memsim::FaultClass> classes;
  };

  const auto& classes = memsim::all_fault_classes();
  std::vector<Point> points;
  for (const auto& alg : march::all_algorithms()) {
    Point p{alg.name(), alg.ops_per_cell(), 0, {}};
    for (auto cls : classes) {
      if (march::analyze(alg, cls) == Detection::Guaranteed) {
        ++p.guaranteed;
        p.classes.insert(cls);
      }
    }
    points.push_back(std::move(p));
  }
  std::sort(points.begin(), points.end(),
            [](const Point& a, const Point& b) { return a.ops < b.ops; });

  std::printf("=== Test length vs guaranteed coverage ===\n\n");
  std::printf("  %-16s %6s %12s\n", "algorithm", "ops/n", "guaranteed");
  int best_so_far = -1;
  std::vector<std::string> frontier;
  for (const auto& p : points) {
    const bool on_frontier = p.guaranteed > best_so_far;
    std::printf("  %-16s %6d %9d/%zu %s\n", p.name.c_str(), p.ops,
                p.guaranteed, classes.size(), on_frontier ? " <- frontier" : "");
    if (on_frontier) {
      frontier.push_back(p.name);
      best_so_far = p.guaranteed;
    }
  }
  std::printf("\n");

  Checker c;
  c.check(frontier.size() >= 4,
          "the frontier has several distinct cost/coverage points");
  c.check(frontier.front() == "MATS",
          "MATS anchors the cheap end of the frontier");
  // The frontier is what the programmable controller monetizes: a single
  // hardwired controller can sit on exactly one of these points.
  auto find = [&](const char* name) -> const Point& {
    for (const auto& p : points)
      if (p.name == name) return p;
    std::abort();
  };
  c.check(find("March C").classes.contains(memsim::FaultClass::CFid) &&
              !find("MATS+").classes.contains(memsim::FaultClass::CFid),
          "March C's extra 5n over MATS+ buys the coupling guarantees");
  c.check(find("March C++").guaranteed > find("March C+").guaranteed &&
              find("March C+").guaranteed > find("March C").guaranteed,
          "the paper's enhancement chain climbs the frontier");
  // Strict-domination audit (informational): a longer algorithm whose
  // guarantee set is a subset of a shorter one's looks dominated — but the
  // per-class metric is deliberately blind to *linked*-fault coverage,
  // which is exactly what March A / B / LR buy with their longer elements
  // (see bench_fault_coverage's linked section: March A and LR score 100%
  // where March C scores ~86%).  The audit therefore demonstrates why
  // single-fault class counts alone must not drive algorithm choice.
  int dominated = 0;
  for (const auto& longer : points) {
    for (const auto& shorter : points) {
      if (shorter.ops >= longer.ops || shorter.name == longer.name) continue;
      if (std::includes(shorter.classes.begin(), shorter.classes.end(),
                        longer.classes.begin(), longer.classes.end())) {
        ++dominated;
        std::printf("  note: %s (%dn) is dominated by %s (%dn)\n",
                    longer.name.c_str(), longer.ops, shorter.name.c_str(),
                    shorter.ops);
        break;
      }
    }
  }
  std::printf("\n");
  c.check(dominated >= 3,
          "the single-fault metric 'dominates' the linked-fault algorithms "
          "(March A/B/LR) — evidence the metric alone is insufficient");
  c.check(!frontier.empty() && frontier.back() == "March C++",
          "March C++ tops the guaranteed-coverage frontier");

  return c.finish("bench_pareto");
}
