// Extension experiment: program-load (test setup) time.
//
// The Table 3 storage redesign trades load speed for area: scan-only cells
// run at ~1/6 of the functional clock, so serially loading the Z x Y
// microcode image costs 6 functional cycles per bit, while the pFSM's
// full-rate buffer loads at one bit per cycle.  The paper argues the trade
// is free in practice because the microcode contents are static during the
// test; this bench quantifies it: even the slow load is a small fraction
// of a single March C pass over a 1K array, and it amortizes across every
// memory pass, background, port and re-run.

#include <cstdio>

#include "bench_common.h"
#include "march/expand.h"
#include "mbist_pfsm/compiler.h"
#include "mbist_pfsm/isa.h"
#include "mbist_ucode/assembler.h"
#include "mbist_ucode/isa.h"

int main() {
  using namespace pmbist;
  using namespace pmbist::bench;
  const auto lib = netlist::TechLibrary::cmos5s();

  std::printf("=== Program load (test setup) time ===\n\n");

  const double scan_only_fraction =
      lib.info(netlist::Cell::ScanOnlyCell).max_clock_fraction;
  const int ucode_bits = kUcodeDepth * mbist_ucode::kInstructionBits;
  const int pfsm_bits = kPfsmDepth * mbist_pfsm::kPfsmInstructionBits;

  const auto ucode_load =
      static_cast<std::uint64_t>(ucode_bits / scan_only_fraction);
  const auto pfsm_load = static_cast<std::uint64_t>(pfsm_bits);

  std::printf("  %-28s %10s %18s %14s\n", "architecture", "bits",
              "shift rate", "load cycles");
  std::printf("  %-28s %10d %18s %14llu\n", "microcode (scan-only cells)",
              ucode_bits, "1/6 functional",
              static_cast<unsigned long long>(ucode_load));
  std::printf("  %-28s %10d %18s %14llu\n", "prog. FSM (full-rate cells)",
              pfsm_bits, "functional",
              static_cast<unsigned long long>(pfsm_load));
  std::printf("  %-28s %10d %18s %14d\n", "hardwired", 0, "-", 0);
  std::printf("\n");

  Checker c;
  c.check(ucode_load > pfsm_load,
          "the scan-only storage loads slower than the full-rate buffer");

  const auto test_ops = march::expanded_op_count(march::march_c(),
                                                 kBitOriented);
  const double setup_fraction =
      static_cast<double>(ucode_load) / static_cast<double>(test_ops);
  std::printf("  March C on 1K x 1: %llu test operations; microcode load = "
              "%.1f%% of one pass\n",
              static_cast<unsigned long long>(test_ops),
              100.0 * setup_fraction);
  c.check(setup_fraction < 0.25,
          "even the slow load is a small fraction of one test pass");

  const auto test_ops_word = march::expanded_op_count(march::march_c_plus(),
                                                      kMultiport);
  std::printf("  March C+ on 2-port 1K x 8: %llu operations; load = %.2f%%\n\n",
              static_cast<unsigned long long>(test_ops_word),
              100.0 * static_cast<double>(ucode_load) /
                  static_cast<double>(test_ops_word));
  c.check(static_cast<double>(ucode_load) /
                  static_cast<double>(test_ops_word) <
              0.02,
          "on realistic word-oriented/multiport runs the load time is "
          "negligible (<2%, amortized once across the whole run)");

  return c.finish("bench_program_load");
}
