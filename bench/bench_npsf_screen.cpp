// Extension experiment: neighborhood-pattern-sensitive faults vs the test
// spectrum — the coverage/cost frontier beyond march tests.
//
// NPSFs depend on the *physical* neighborhood (so the fault population is
// generated against a scrambled array topology), and no march test can
// guarantee their detection: a march applies uniform data per pass, so
// most neighborhood patterns never occur.  The exhaustive pattern screen
// detects all of them at ~30x the operation count.  The measured frontier
// below is the quantitative version of the paper's argument that different
// fabrication/test phases need different algorithms — which only a
// programmable controller can serve with one piece of silicon.

#include "bench_common.h"
#include "diag/npsf.h"
#include "march/campaign.h"
#include "march/expand.h"

int main() {
  using namespace pmbist;
  using namespace pmbist::bench;
  using memsim::AddressScrambler;
  using memsim::ArrayTopology;

  const memsim::MemoryGeometry geom{.address_bits = 6, .word_bits = 1,
                                    .num_ports = 1};
  const ArrayTopology topo{6, 3, AddressScrambler::scrambled(6, 2026)};
  const auto faults = memsim::npsf_faults(topo, 0, 2026, 96);

  std::printf("=== Static NPSF detection (64-cell array, scrambled "
              "topology, %zu sampled faults) ===\n\n",
              faults.size());
  std::printf("  %-12s %10s %12s\n", "test", "ops", "NPSF detect");

  Checker c;
  double march_best = 0.0;
  double screen_ratio = 0.0;
  std::uint64_t screen_ops = 0;
  std::uint64_t march_ops = 0;

  // The screen stream is not a march expansion, so it feeds the campaign
  // runner directly (no cache); faults shard across all cores.
  const march::CampaignRunner runner{{.powerup_seed = 7}};
  auto measure = [&](const char* name, const march::OpStream& stream) {
    const auto result = runner.run(stream, geom, faults);
    const double ratio = static_cast<double>(result.detected()) /
                         static_cast<double>(faults.size());
    std::printf("  %-12s %10zu %11.1f%%\n", name, stream.size(),
                100.0 * ratio);
    return ratio;
  };

  for (const char* name : {"March C", "March SS", "March G"}) {
    const auto stream = march::expand(march::by_name(name), geom);
    if (std::string(name) == "March C") march_ops = stream.size();
    march_best = std::max(march_best, measure(name, stream));
  }
  {
    const auto screen = diag::npsf_screen(topo);
    screen_ops = screen.size();
    screen_ratio = measure("NPSF screen", screen);
  }
  std::printf("\n");

  c.check(march_best < 1.0,
          "no march test guarantees NPSF detection (uniform data per pass)");
  c.check(march_best > 0.2,
          "march tests still catch the uniform-pattern NPSFs");
  c.check(screen_ratio == 1.0,
          "the exhaustive pattern screen detects every sampled NPSF");
  c.check(screen_ops >= 10 * march_ops,
          "the screen pays an order of magnitude more operations than "
          "March C — the coverage/cost trade the programmable controller "
          "navigates");

  return c.finish("bench_npsf_screen");
}
