// Extension experiment A: the fault-coverage matrix behind the paper's
// algorithm family.  The paper cites the detection properties of March
// C/A and motivates the +/++ enhancements (data retention, disconnected
// pull-up/down devices) without tabulating coverage; this bench measures
// it by fault simulation and checks the claims that justify each
// enhancement — i.e. *why* a programmable controller is worth its area.
//
// The matrix runs on the campaign engine twice — the serial scalar
// reference (jobs=1, one memory per fault) and the packed PPSFP kernel
// (64 fault lanes per pass, jobs=8) — and checks that every (algorithm x
// fault-class) pair produces byte-identical detection records, plus the
// wall-time speedup the packed kernel buys.  The kernel speedup is
// core-count-independent, so the gate holds even single-core (see
// bench_campaign for the full scalar/packed × jobs sweep).

#include <chrono>
#include <cstdio>
#include <thread>

#include "bench_common.h"
#include "march/campaign.h"
#include "march/coverage.h"

int main() {
  using namespace pmbist;
  using namespace pmbist::bench;
  using memsim::FaultClass;
  using Clock = std::chrono::steady_clock;

  std::printf("=== Fault coverage matrix (64-cell bit-oriented array, "
              "sampled fault universes) ===\n\n");

  const memsim::MemoryGeometry geom{.address_bits = 6, .word_bits = 1,
                                    .num_ports = 1};
  // One bench-owned expansion cache shared by every campaign below (the
  // engine holds no global cache; see march/campaign.h).
  march::StreamCache cache;
  const march::CoverageOptions opts{.seed = 2026,
                                    .max_instances_per_class = 96,
                                    .cache = &cache};

  std::vector<march::MarchAlgorithm> algs{
      march::mats(),       march::mats_plus(),   march::march_x(),
      march::march_y(),    march::march_c(),     march::march_u(),
      march::march_lr(),   march::march_c_plus(),
      march::march_c_plus_plus(), march::march_a(),
      march::march_a_plus(), march::march_a_plus_plus(),
      march::march_ss(),   march::march_g()};
  const auto& classes = memsim::all_fault_classes();

  Checker c;

  // One campaign per (algorithm, class) pair, scalar-serial and
  // packed-parallel; the rows for the coverage table are assembled from
  // the (identical) records.
  std::vector<march::CoverageRow> rows;
  double serial_ms = 0.0;
  double packed_ms = 0.0;
  bool all_identical = true;
  for (const auto& alg : algs) {
    march::CoverageRow row;
    row.algorithm = alg.name();
    for (FaultClass cls : classes) {
      const auto universe = march::make_fault_universe(
          cls, geom, opts.seed, opts.max_instances_per_class);

      const auto t0 = Clock::now();
      const auto serial = march::run_campaign(
          alg, geom, universe,
          {.jobs = 1, .powerup_seed = opts.seed,
           .kernel = march::CampaignKernel::Scalar},
          &cache);
      const auto t1 = Clock::now();
      const auto packed = march::run_campaign(
          alg, geom, universe,
          {.jobs = 8, .powerup_seed = opts.seed,
           .kernel = march::CampaignKernel::Packed},
          &cache);
      const auto t2 = Clock::now();

      serial_ms += std::chrono::duration<double, std::milli>(t1 - t0).count();
      packed_ms +=
          std::chrono::duration<double, std::milli>(t2 - t1).count();
      if (serial.records != packed.records) all_identical = false;
      row.cells[cls] =
          march::CoverageCell{packed.detected(), packed.total()};
    }
    rows.push_back(std::move(row));
  }
  std::printf("%s\n", march::format_coverage_table(rows, classes).c_str());

  const unsigned cores = std::thread::hardware_concurrency();
  const double speedup = packed_ms > 0.0 ? serial_ms / packed_ms : 1.0;
  std::printf("campaign wall time: scalar serial %.1f ms, packed jobs=8 "
              "%.1f ms (%.2fx on %u cores)\n\n",
              serial_ms, packed_ms, speedup, cores);

  c.check(all_identical,
          "packed jobs=8 detection records are byte-identical to the "
          "scalar serial reference on every algorithm x fault-class pair");
  c.check(speedup >= 3.0,
          "the packed campaign is >= 3x faster than the scalar serial "
          "reference (lane-parallelism, independent of core count)");

  auto ratio = [&](const char* alg, FaultClass cls) {
    for (const auto& row : rows)
      if (row.algorithm == alg) return row.cells.at(cls).ratio();
    std::abort();
  };

  c.check(ratio("March C", FaultClass::SAF) == 1.0 &&
              ratio("March C", FaultClass::TF) == 1.0 &&
              ratio("March C", FaultClass::AF) == 1.0,
          "March C: full SAF/TF/AF coverage");
  c.check(ratio("March C", FaultClass::CFin) == 1.0 &&
              ratio("March C", FaultClass::CFid) == 1.0 &&
              ratio("March C", FaultClass::CFst) == 1.0,
          "March C: full unlinked coupling coverage");
  c.check(ratio("March C", FaultClass::DRF) == 0.0 &&
              ratio("March C+", FaultClass::DRF) == 1.0,
          "the + retention components add full DRF coverage");
  c.check(ratio("March C+", FaultClass::DRDF) == 0.0 &&
              ratio("March C++", FaultClass::DRDF) == 1.0,
          "the ++ triple reads add full weak-cell (DRDF) coverage");
  c.check(ratio("March A+", FaultClass::DRF) == 1.0 &&
              ratio("March A++", FaultClass::DRDF) == 1.0,
          "the A family enhancements behave identically");
  c.check(ratio("MATS", FaultClass::CFin) < 1.0 &&
              ratio("MATS+", FaultClass::TF) < 1.0,
          "the cheap algorithms genuinely trade coverage for length");
  c.check(ratio("March C", FaultClass::SOF) < 0.3 &&
              ratio("March Y", FaultClass::SOF) == 1.0 &&
              ratio("March C+", FaultClass::SOF) == 1.0,
          "SOF needs (r,w,r)-shaped elements: March C misses, March Y and "
          "the + retention tails detect");
  c.check(ratio("March SS", FaultClass::WDF) == 1.0 &&
              ratio("March C", FaultClass::WDF) < 1.0,
          "March SS's verified non-transition writes catch write disturbs");
  c.check(ratio("March G", FaultClass::DRF) == 1.0 &&
              ratio("March G", FaultClass::SOF) == 1.0,
          "March G's pause components add retention and recovery coverage");

  // Linked faults: pairs of idempotent couplings sharing a victim mask
  // each other; March LR was designed for them.
  std::printf("linked CFid pairs (masking configurations):\n");
  double lr_ratio = 0, c_ratio = 0;
  for (const auto* name : {"March C", "March A", "March SS", "March LR"}) {
    const auto cell = march::evaluate_linked_coverage(
        march::by_name(name), geom, opts);
    std::printf("  %-10s %3d/%3d = %5.1f%%\n", name, cell.detected,
                cell.total, 100.0 * cell.ratio());
    if (std::string(name) == "March LR") lr_ratio = cell.ratio();
    if (std::string(name) == "March C") c_ratio = cell.ratio();
  }
  std::printf("\n");
  c.check(lr_ratio == 1.0 && c_ratio < 1.0,
          "March LR detects all linked CFid pairs; March C provably misses "
          "some");

  // The expansion cache: 14 algorithms x 14 classes re-used each stream.
  const auto stats = cache.stats();
  std::printf("stream cache: %llu hits / %llu misses\n\n",
              static_cast<unsigned long long>(stats.hits),
              static_cast<unsigned long long>(stats.misses));
  c.check(stats.hits > stats.misses,
          "the keyed stream cache re-serves expansions across fault "
          "classes");

  return c.finish("bench_fault_coverage");
}
