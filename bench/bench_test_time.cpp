// Extension experiment B: test application time.
//
// The paper's architectures trade area against control overhead: the
// microcode controller issues one memory operation per cycle with zero
// inter-element overhead (the loop decisions are combinational), the
// two-level pFSM pays Reset/Done cycles per component per pass, and the
// hardwired controller pays one setup state per element.  This bench
// tabulates cycles per algorithm per memory size for all three and checks
// that the overhead stays where the architecture puts it (asymptotically
// negligible: everything converges to ops/cycle = 1 as N grows).

#include <cstdio>

#include "bench_common.h"
#include "bist/controller.h"
#include "march/expand.h"
#include "mbist_hardwired/controller.h"
#include "mbist_pfsm/controller.h"
#include "mbist_ucode/controller.h"

int main() {
  using namespace pmbist;
  using namespace pmbist::bench;

  std::printf("=== Test application time (cycles) ===\n\n");

  Checker c;
  for (const char* name : {"March C", "March C+", "March A"}) {
    const auto alg = march::by_name(name);
    std::printf("%s (%dn)\n", name, alg.ops_per_cell());
    std::printf("  %10s %12s %12s %12s %12s\n", "addr bits", "ops",
                "microcode", "prog. FSM", "hardwired");
    for (int bits : {6, 8, 10, 12}) {
      const memsim::MemoryGeometry g{.address_bits = bits, .word_bits = 1,
                                     .num_ports = 1};
      const auto ops = march::expanded_op_count(alg, g);

      mbist_ucode::MicrocodeController ucode{
          {.geometry = g, .storage_depth = kUcodeDepth}};
      ucode.load_algorithm(alg);
      mbist_pfsm::PfsmController pfsm{
          {.geometry = g, .buffer_depth = kPfsmDepth}};
      pfsm.load_algorithm(alg);
      mbist_hardwired::HardwiredController hw{alg, {.geometry = g}};

      const auto cu = bist::count_cycles(ucode, 1'000'000'000);
      const auto cp = bist::count_cycles(pfsm, 1'000'000'000);
      const auto ch = bist::count_cycles(hw, 1'000'000'000);
      std::printf("  %10d %12llu %12llu %12llu %12llu\n", bits,
                  static_cast<unsigned long long>(ops),
                  static_cast<unsigned long long>(cu),
                  static_cast<unsigned long long>(cp),
                  static_cast<unsigned long long>(ch));

      if (bits == 12) {
        c.check(cu <= cp && cu <= ch,
                std::string(name) +
                    ": the microcode controller has the lowest cycle count");
        c.check(static_cast<double>(cp) / ops < 1.01,
                std::string(name) +
                    ": pFSM overhead is <1% at 4K cells (amortized)");
      }
    }
    std::printf("\n");
  }

  // Pauses dominate wall-clock for retention tests regardless of
  // controller: report the simulated pause budget.
  const auto cp = march::march_c_plus();
  std::uint64_t pause_ns = 0;
  for (const auto& e : cp.elements())
    if (e.is_pause) pause_ns += e.pause_ns;
  std::printf("March C+ pause budget per pass: %llu ns of hold time\n\n",
              static_cast<unsigned long long>(pause_ns));
  c.check(pause_ns == 2 * march::kDefaultPauseNs,
          "March C+ spends two retention pauses per pass");

  return c.finish("bench_test_time");
}
