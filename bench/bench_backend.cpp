// Extension experiment T: the pluggable memory backend and the host-RAM
// memtest engine (docs/BACKEND.md).  Gates the properties that make the
// backend seam trustworthy, then measures what it buys:
//
//   * cross-backend identity — every gated library algorithm produces
//     the same signature, op counts and verdict on the behavioral
//     simulator and on mmap'd host RAM;
//   * jobs-invariance — the deterministic report is byte-identical for
//     every worker count (shards are a pure function of the size);
//   * the mismatch path works — an injected single-bit error is caught,
//     logged and fails the run;
//   * huge-page requests degrade gracefully when the host has none;
//   * host RAM is marched faster than the simulator (word-width batching
//     against a direct mapping vs virtual calls per access).
//
// Emits BENCH_backend.json with the gate verdicts and a sim-vs-hostram
// throughput table (sustained read/write GB/s per configuration).

#include <algorithm>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "backend/backend.h"
#include "backend/memtest.h"
#include "bench_common.h"
#include "march/library.h"

namespace {

using namespace pmbist;

backend::MemtestReport run(const march::MarchAlgorithm& alg,
                           std::uint64_t size_bytes,
                           backend::BackendKind kind, int jobs,
                           int backgrounds, bool inject = false,
                           bool huge_pages = false) {
  backend::MemtestOptions opts;
  opts.size_bytes = size_bytes;
  opts.backgrounds = backgrounds;
  opts.jobs = jobs;
  opts.backend = kind;
  opts.inject_error = inject;
  opts.huge_pages = huge_pages;
  return backend::run_memtest(alg, opts);
}

/// Deterministic report minus the header line (which names the backend).
std::string report_body(const backend::MemtestReport& report) {
  const auto text = backend::format_memtest_report(report);
  return text.substr(text.find('\n') + 1);
}

/// Sustained read/write GB/s with the formatter's attribution rule: a
/// mixed phase's wall time splits between reads and writes in proportion
/// to bytes moved.
std::pair<double, double> sustained_gbps(const backend::MemtestReport& r) {
  constexpr double kGiB = 1024.0 * 1024.0 * 1024.0;
  double rb_total = 0.0, wb_total = 0.0, rs = 0.0, ws = 0.0;
  for (const auto& p : r.phases) {
    if (p.is_pause) continue;
    const double rb = static_cast<double>(p.reads) * sizeof(backend::Word);
    const double wb = static_cast<double>(p.writes) * sizeof(backend::Word);
    if (rb + wb <= 0.0) continue;
    const double tr = p.seconds * rb / (rb + wb);
    rs += tr;
    ws += p.seconds - tr;
    rb_total += rb;
    wb_total += wb;
  }
  return {rs > 0.0 ? rb_total / kGiB / rs : 0.0,
          ws > 0.0 ? wb_total / kGiB / ws : 0.0};
}

struct SweepPoint {
  std::string backend;
  std::uint64_t size_bytes = 0;
  double read_gbps = 0.0;
  double write_gbps = 0.0;
  double wall_s = 0.0;
};

}  // namespace

int main() {
  using namespace pmbist;
  using namespace pmbist::bench;

  std::printf("=== Pluggable memory backend: sim-vs-hostram identity and "
              "host-RAM throughput ===\n\n");

  Checker c;
  constexpr std::uint64_t kMiB = 1ull << 20;

  // Gate 1: cross-backend identity over gated library algorithms.
  bool identical = true;
  bool all_pass = true;
  for (const char* name : {"MATS+", "March C", "March C+", "March LR"}) {
    const auto& alg = march::by_name(name);
    const auto sim = run(alg, 1 * kMiB, backend::BackendKind::Sim, 2, 2);
    const auto host = run(alg, 1 * kMiB, backend::BackendKind::HostRam, 2, 2);
    identical &= report_body(sim) == report_body(host) &&
                 sim.signature == host.signature;
    all_pass &= sim.passed() && host.passed();
    std::printf("  %-10s  sim 0x%08llX  hostram 0x%08llX  %s\n", name,
                static_cast<unsigned long long>(sim.signature),
                static_cast<unsigned long long>(host.signature),
                sim.signature == host.signature ? "identical" : "DIFFER");
  }
  std::printf("\n");
  c.check(identical, "every gated library algorithm produces an identical "
                     "deterministic report on sim and hostram");
  c.check(all_pass, "fault-free runs PASS on both backends");

  // Gate 2: jobs-invariance of the deterministic report.
  const auto& march_c = march::by_name("March C");
  std::string reference;
  bool jobs_invariant = true;
  for (const int jobs : {1, 2, 4, 8}) {
    const auto r = run(march_c, 4 * kMiB, backend::BackendKind::HostRam,
                       jobs, 2);
    const auto text = backend::format_memtest_report(r);
    if (reference.empty())
      reference = text;
    else
      jobs_invariant &= text == reference;
  }
  c.check(jobs_invariant, "the deterministic report is byte-identical for "
                          "jobs in {1, 2, 4, 8}");

  // Gate 3: the injection self-test exercises the mismatch path.
  const auto injected =
      run(march_c, 4 * kMiB, backend::BackendKind::HostRam, 2, 1, true);
  c.check(!injected.passed() && injected.mismatches == 1 &&
              injected.failures.size() == 1,
          "an injected single-bit error is caught, logged and fails the run");

  // Gate 4: huge-page requests never fail the run.
  const auto huge = run(march_c, 4 * kMiB, backend::BackendKind::HostRam, 2,
                        1, false, true);
  c.check(huge.completed && huge.passed(),
          "a huge-page request degrades gracefully when unavailable");

  // Throughput sweep: March C, one background, one pass.  The simulator
  // point uses a small buffer (virtual-call path); host RAM marches real
  // memory through the direct mapping.
  std::vector<SweepPoint> sweep;
  auto sweep_point = [&](backend::BackendKind kind, std::uint64_t bytes) {
    const auto r = run(march_c, bytes, kind, 0, 1);
    const auto [rd, wr] = sustained_gbps(r);
    const std::string bname{backend::to_string(kind)};
    sweep.push_back({bname, bytes, rd, wr, r.wall_seconds});
    std::printf("  %-8s %6llu MiB  read %8.2f GB/s  write %8.2f GB/s  "
                "wall %7.3f s\n", bname.c_str(),
                static_cast<unsigned long long>(bytes >> 20), rd, wr,
                r.wall_seconds);
    return r;
  };
  std::printf("\n  March C, 1 background, 1 pass:\n");
  const auto sim_point = sweep_point(backend::BackendKind::Sim, 4 * kMiB);
  sweep_point(backend::BackendKind::HostRam, 4 * kMiB);
  sweep_point(backend::BackendKind::HostRam, 64 * kMiB);
  const auto host_point =
      sweep_point(backend::BackendKind::HostRam, 256 * kMiB);
  std::printf("\n");

  const auto [sim_rd, sim_wr] = sustained_gbps(sim_point);
  const auto [host_rd, host_wr] = sustained_gbps(host_point);
  c.check(host_rd > sim_rd && host_wr > sim_wr,
          "host RAM is marched faster than the behavioral simulator");

  if (std::FILE* out = std::fopen("BENCH_backend.json", "w")) {
    std::fprintf(out,
                 "{\n"
                 "  \"gates\": {\n"
                 "    \"cross_backend_identical\": %s,\n"
                 "    \"jobs_invariant\": %s,\n"
                 "    \"injection_detected\": %s,\n"
                 "    \"huge_page_fallback\": %s\n"
                 "  },\n"
                 "  \"sweep\": [\n",
                 identical && all_pass ? "true" : "false",
                 jobs_invariant ? "true" : "false",
                 !injected.passed() ? "true" : "false",
                 huge.passed() ? "true" : "false");
    for (std::size_t i = 0; i < sweep.size(); ++i) {
      const auto& p = sweep[i];
      std::fprintf(out,
                   "    {\"backend\": \"%s\", \"size_mb\": %llu, "
                   "\"read_gbps\": %.2f, \"write_gbps\": %.2f, "
                   "\"wall_s\": %.3f}%s\n",
                   p.backend.c_str(),
                   static_cast<unsigned long long>(p.size_bytes >> 20),
                   p.read_gbps, p.write_gbps, p.wall_s,
                   i + 1 < sweep.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    std::printf("wrote BENCH_backend.json\n\n");
  }

  return c.finish("bench_backend");
}
