// Extension experiment: in-field online testing.  The paper's lifetime-
// reuse argument (Section 1) says the same programmable controllers that
// ran the power-on sweep are re-armed periodically in the field; this
// bench runs the 9-memory demo chip against its demo mission profile
// through field::FieldManager and checks the online-testing claims:
//
//   * the FieldReport is bit-identical for jobs in {1, 2, 8} (determinism),
//   * every scheduled burst honors every constraint at once: it sits inside
//     an idle window of its memory, concurrent streams never exceed the
//     test-bus lanes, summed toggle weight never exceeds the power budget,
//     and controller-sharing seats stay exclusive,
//   * per-instance busy time is exactly the sum of its burst durations
//     (the modeled cycle costs are exact, not estimates),
//   * all 9 memories end the horizon healthy (including the folded BISR
//     retest of the defective ROM-patch array),
//   * widening the test bus never increases contention stalls,
//
// and sweeps the bus budget over {1, 2, 4} lanes, emitting window
// utilization, bus stalls and worst-case result staleness per point as
// BENCH_field.json.

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench_common.h"
#include "field/manager.h"
#include "field/profile.h"

int main() {
  using namespace pmbist;
  using namespace pmbist::bench;

  std::printf("=== In-field online testing (demo chip x demo mission "
              "profile, transparent sessions) ===\n\n");

  Checker c;

  const auto chip = soc::demo_soc();
  const auto plan = soc::demo_plan();
  const auto profile = field::demo_profile();

  // --- determinism ----------------------------------------------------
  const auto r1 = field::run_field(chip, plan, profile, {.jobs = 1});
  const auto r2 = field::run_field(chip, plan, profile, {.jobs = 2});
  const auto r8 = field::run_field(chip, plan, profile, {.jobs = 8});
  c.check(r1 == r2 && r1 == r8,
          "FieldReport is bit-identical for jobs in {1, 2, 8}");
  c.check(r1.all_healthy(),
          "all 9 memories healthy at the horizon (defects repaired and "
          "retested in later windows)");

  // --- constraint compliance ------------------------------------------
  // Concurrency is piecewise-constant, so burst starts cover all instants.
  std::map<std::string, double> weight;
  std::map<std::string, std::string> group;
  for (const auto& a : plan.assignments()) {
    weight[a.memory] = plan.effective_weight(a, *chip.find(a.memory));
    group[a.memory] = a.share_group;
  }
  bool windows_ok = true, bus_ok = true, power_ok = true, groups_ok = true;
  for (const auto& s : r1.sessions) {
    const auto* set = profile.find(s.memory);
    if (set == nullptr ||
        !std::any_of(set->windows.begin(), set->windows.end(),
                     [&](const auto& w) {
                       return w.start <= s.start_cycle && s.end_cycle <= w.end;
                     }))
      windows_ok = false;
    std::uint64_t lanes = 0;
    double power = 0.0;
    std::map<std::string, int> group_load;
    for (const auto& o : r1.sessions) {
      if (o.start_cycle <= s.start_cycle && s.start_cycle < o.end_cycle) {
        ++lanes;
        power += weight[o.memory];
        if (!group[o.memory].empty()) ++group_load[group[o.memory]];
      }
    }
    if (lanes > profile.bus_budget) bus_ok = false;
    if (power > plan.power().budget + 1e-9) power_ok = false;
    for (const auto& [name, load] : group_load)
      if (load > 1) groups_ok = false;
  }
  c.check(windows_ok, "every burst sits inside an idle window of its memory");
  c.check(bus_ok, "concurrent streams never exceed the test-bus lanes");
  c.check(power_ok, "summed toggle weight never exceeds the power budget");
  c.check(groups_ok, "controller-sharing seats stay exclusive");

  std::map<std::string, std::uint64_t> busy;
  for (const auto& s : r1.sessions) busy[s.memory] += s.duration();
  bool exact_ok = true;
  for (const auto& inst : r1.instances)
    if (inst.busy_cycles != busy[inst.memory]) exact_ok = false;
  c.check(exact_ok,
          "per-instance busy time == sum of its burst durations (exact "
          "cycle model)");

  // --- bus-budget sweep -----------------------------------------------
  struct SweepPoint {
    std::uint64_t bus_budget;
    double utilization;
    std::uint64_t bus_stalls;
    std::uint64_t max_staleness;
    int completed_passes;
  };
  std::vector<SweepPoint> sweep;
  std::printf("\nbus-budget sweep:\n");
  std::printf("  %5s %12s %12s %14s %10s\n", "lanes", "utilization",
              "bus stalls", "max staleness", "passes");
  for (const std::uint64_t lanes : {1, 2, 4}) {
    auto p = profile;
    p.bus_budget = lanes;
    const auto r = field::run_field(chip, plan, p, {.jobs = 0});
    std::uint64_t staleness = 0;
    int passes = 0;
    for (const auto& inst : r.instances) {
      staleness = std::max(staleness, inst.staleness_cycles);
      passes += inst.completed_passes();
    }
    sweep.push_back({lanes, r.window_utilization, r.bus_stall_cycles,
                     staleness, passes});
    std::printf("  %5llu %11.1f%% %12llu %14llu %10d\n",
                static_cast<unsigned long long>(lanes),
                r.window_utilization * 100.0,
                static_cast<unsigned long long>(r.bus_stall_cycles),
                static_cast<unsigned long long>(staleness), passes);
  }
  bool stalls_monotone = true, passes_monotone = true;
  for (std::size_t i = 1; i < sweep.size(); ++i) {
    if (sweep[i].bus_stalls > sweep[i - 1].bus_stalls) stalls_monotone = false;
    if (sweep[i].completed_passes < sweep[i - 1].completed_passes)
      passes_monotone = false;
  }
  std::printf("\n");
  c.check(stalls_monotone,
          "widening the test bus never increases contention stalls");
  c.check(passes_monotone,
          "widening the test bus never loses completed passes");
  c.check(sweep.front().bus_stalls > sweep.back().bus_stalls,
          "a single-lane bus pays real contention the 4-lane bus avoids");

  // --- artifact -------------------------------------------------------
  if (std::FILE* json = std::fopen("BENCH_field.json", "w")) {
    std::fprintf(json,
                 "{\n"
                 "  \"chip\": \"%s\",\n"
                 "  \"profile\": \"%s\",\n"
                 "  \"horizon_cycles\": %llu,\n"
                 "  \"memories\": %zu,\n"
                 "  \"healthy\": %d,\n"
                 "  \"wall_ms_jobs8\": %.3f,\n"
                 "  \"bus_sweep\": [\n",
                 r1.chip.c_str(), r1.profile.c_str(),
                 static_cast<unsigned long long>(r1.horizon),
                 r1.instances.size(), r1.healthy_count(),
                 r8.wall_seconds * 1e3);
    for (std::size_t i = 0; i < sweep.size(); ++i) {
      const auto& p = sweep[i];
      std::fprintf(json,
                   "    {\"bus_budget\": %llu, \"window_utilization\": %.4f, "
                   "\"bus_stall_cycles\": %llu, \"max_staleness_cycles\": "
                   "%llu, \"completed_passes\": %d}%s\n",
                   static_cast<unsigned long long>(p.bus_budget),
                   p.utilization,
                   static_cast<unsigned long long>(p.bus_stalls),
                   static_cast<unsigned long long>(p.max_staleness),
                   p.completed_passes, i + 1 < sweep.size() ? "," : "");
    }
    std::fprintf(json, "  ]\n}\n");
    std::fclose(json);
    std::printf("wrote BENCH_field.json\n\n");
  } else {
    c.check(false, "BENCH_field.json is writable");
  }

  return c.finish("bench_field");
}
