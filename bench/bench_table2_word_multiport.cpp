// Table 2 reproduction: "Size of the Memory BIST Methodology For
// Word-Oriented and Multiport Memories" — the same eight methods extended
// with data-background and port loops.
//
// Reproduced shape (paper Sec. 3): every architecture grows when extended;
// the hardwired controllers stay the smallest; and the area *difference*
// between the programmable and non-programmable architectures shrinks
// relative to Table 1, because the extension logic (background generator,
// port sequencer, loop states) is a larger fraction of a small hardwired
// unit (this is the mechanism behind the paper's observation 4).

#include "bench_common.h"

int main() {
  using namespace pmbist;
  using namespace pmbist::bench;

  std::printf(
      "=== Table 2: word-oriented (1K x 8) and multiport (2-port 1K x 8) "
      "===\n\n");
  const auto bit = method_areas(kBitOriented, false);
  const auto word = method_areas(kWordOriented, false);
  const auto multi = method_areas(kMultiport, false);

  std::printf("  %-24s %14s %14s %14s\n", "Method", "bit-orient (GE)",
              "word (GE)", "multiport (GE)");
  for (std::size_t i = 0; i < word.size(); ++i)
    std::printf("  %-24s %14.1f %14.1f %14.1f\n", word[i].method.c_str(),
                bit[i].ge, word[i].ge, multi[i].ge);
  std::printf("\n");

  Checker c;
  for (std::size_t i = 0; i < word.size(); ++i) {
    c.check(bit[i].ge < word[i].ge && word[i].ge < multi[i].ge,
            word[i].method + " grows bit -> word -> multiport");
  }
  for (const auto& alg : march::paper_table_algorithms()) {
    c.check(row_ge(multi, alg.name()) < row_ge(multi, "Prog. FSM-Based") &&
                row_ge(multi, alg.name()) < row_ge(multi, "Microcode-Based"),
            "multiport hardwired " + alg.name() +
                " remains smaller than the programmable units");
  }
  // Relative programmability premium shrinks with capability: compare the
  // microcode/hardwired ratio for March C across tables.
  const double ratio_bit =
      row_ge(bit, "Microcode-Based") / row_ge(bit, "March C");
  const double ratio_multi =
      row_ge(multi, "Microcode-Based") / row_ge(multi, "March C");
  std::printf("  programmability premium (ucode/March C): bit %.2fx, "
              "multiport %.2fx\n\n",
              ratio_bit, ratio_multi);
  c.check(ratio_multi < ratio_bit,
          "the relative programmability premium shrinks as the memory "
          "support is extended");

  return c.finish("bench_table2_word_multiport");
}
