// Table 1 reproduction: "Size of the Memory BIST Methodology For
// Bit-Oriented and Single port memories".
//
// The OCR of the paper lost the numeric cells, so the reproduced artifact
// is the table's structure and the orderings the paper states in Section 3:
//   * flexibility: microcode HIGH > programmable FSM MEDIUM > hardwired LOW;
//   * every hardwired controller is smaller than both programmable ones
//     (programmability is paid for in logic);
//   * within each hardwired family, enhancing the algorithm (C -> C+ ->
//     C++, A -> A+ -> A++) grows the controller;
//   * the microcode architecture (after the Table 3 storage redesign,
//     which the paper's overall conclusion uses) undercuts the
//     programmable FSM while being strictly more flexible.

#include "bench_common.h"
#include "mbist_pfsm/compiler.h"
#include "mbist_ucode/assembler.h"

int main() {
  using namespace pmbist;
  using namespace pmbist::bench;

  std::printf("=== Table 1: bit-oriented, single-port (1K x 1) ===\n\n");
  const auto rows = method_areas(kBitOriented, /*adjusted_storage=*/false);
  print_area_table("BIST unit area, IBM CMOS5S-class 0.35um model", rows);

  const auto adjusted = method_areas(kBitOriented, /*adjusted_storage=*/true);

  Checker c;
  // Flexibility column: demonstrated, not asserted — the microcode unit
  // assembles every library algorithm; the pFSM rejects the ++ variants.
  bool ucode_runs_all = true;
  for (const auto& alg : march::all_algorithms()) {
    try {
      const auto r = mbist_ucode::assemble(alg);
      if (r.program.size() > kUcodeDepth) ucode_runs_all = false;
    } catch (const std::exception&) {
      ucode_runs_all = false;
    }
  }
  c.check(ucode_runs_all,
          "HIGH flexibility: microcode storage (Z=32) fits every library "
          "algorithm");
  c.check(!mbist_pfsm::is_mappable(march::march_c_plus_plus()) &&
              !mbist_pfsm::is_mappable(march::march_a_plus_plus()) &&
              mbist_pfsm::is_mappable(march::march_c_plus()),
          "MEDIUM flexibility: pFSM runs the C/A/+ family but not the ++ "
          "variants");

  for (const auto& alg : march::paper_table_algorithms()) {
    c.check(row_ge(rows, alg.name()) < row_ge(rows, "Prog. FSM-Based") &&
                row_ge(rows, alg.name()) < row_ge(rows, "Microcode-Based"),
            "hardwired " + alg.name() + " is smaller than both programmable "
            "architectures");
  }
  c.check(row_ge(rows, "March C") < row_ge(rows, "March C+") &&
              row_ge(rows, "March C+") < row_ge(rows, "March C++"),
          "hardwired area grows C -> C+ -> C++");
  c.check(row_ge(rows, "March A") < row_ge(rows, "March A+") &&
              row_ge(rows, "March A+") < row_ge(rows, "March A++"),
          "hardwired area grows A -> A+ -> A++");
  c.check(row_ge(adjusted, "Microcode-Based (adj.)") <
              row_ge(rows, "Prog. FSM-Based"),
          "adjusted microcode controller undercuts the programmable FSM "
          "(paper abstract)");

  return c.finish("bench_table1_bit_oriented");
}
