// Extension experiment C: simulation/synthesis throughput micro-benchmarks
// (google-benchmark).  These measure the reproduction infrastructure
// itself: cycle-accurate controller stepping, behavioral fault simulation,
// the assembler/compiler, and the Quine-McCluskey synthesis pass.

#include <benchmark/benchmark.h>

#include "bist/session.h"
#include "march/coverage.h"
#include "march/library.h"
#include "mbist_hardwired/area.h"
#include "mbist_hardwired/controller.h"
#include "mbist_pfsm/controller.h"
#include "mbist_ucode/area.h"
#include "mbist_ucode/controller.h"

namespace {

using namespace pmbist;

const memsim::MemoryGeometry kGeom{.address_bits = 12, .word_bits = 8,
                                   .num_ports = 1};

void BM_MicrocodeControllerRun(benchmark::State& state) {
  mbist_ucode::MicrocodeController ctrl{{.geometry = kGeom}};
  ctrl.load_algorithm(march::march_c());
  memsim::SramModel mem{kGeom, 1};
  std::uint64_t cycles = 0;
  for (auto _ : state) {
    const auto r = bist::run_session(ctrl, mem);
    benchmark::DoNotOptimize(r.failures.data());
    cycles += r.cycles;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(cycles));
}
BENCHMARK(BM_MicrocodeControllerRun)->Unit(benchmark::kMillisecond);

void BM_PfsmControllerRun(benchmark::State& state) {
  mbist_pfsm::PfsmController ctrl{{.geometry = kGeom}};
  ctrl.load_algorithm(march::march_c());
  memsim::SramModel mem{kGeom, 1};
  std::uint64_t cycles = 0;
  for (auto _ : state) {
    const auto r = bist::run_session(ctrl, mem);
    benchmark::DoNotOptimize(r.failures.data());
    cycles += r.cycles;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(cycles));
}
BENCHMARK(BM_PfsmControllerRun)->Unit(benchmark::kMillisecond);

void BM_HardwiredControllerRun(benchmark::State& state) {
  mbist_hardwired::HardwiredController ctrl{march::march_c(),
                                            {.geometry = kGeom}};
  memsim::SramModel mem{kGeom, 1};
  std::uint64_t cycles = 0;
  for (auto _ : state) {
    const auto r = bist::run_session(ctrl, mem);
    benchmark::DoNotOptimize(r.failures.data());
    cycles += r.cycles;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(cycles));
}
BENCHMARK(BM_HardwiredControllerRun)->Unit(benchmark::kMillisecond);

void BM_FaultSimulationCampaign(benchmark::State& state) {
  const memsim::MemoryGeometry g{.address_bits = 6};
  const march::CoverageOptions opts{.seed = 7,
                                    .max_instances_per_class = 32};
  for (auto _ : state) {
    const auto cell = march::evaluate_coverage(
        march::march_c(), memsim::FaultClass::CFid, g, opts);
    benchmark::DoNotOptimize(cell.detected);
  }
}
BENCHMARK(BM_FaultSimulationCampaign)->Unit(benchmark::kMillisecond);

void BM_Assembler(benchmark::State& state) {
  const auto alg = march::march_a_plus_plus();
  for (auto _ : state) {
    const auto r = mbist_ucode::assemble(alg);
    benchmark::DoNotOptimize(r.program.size());
  }
}
BENCHMARK(BM_Assembler);

void BM_ReferenceExpansion(benchmark::State& state) {
  const memsim::MemoryGeometry g{.address_bits = 12, .word_bits = 8,
                                 .num_ports = 2};
  std::uint64_t ops = 0;
  for (auto _ : state) {
    const auto stream = march::expand(march::march_c(), g);
    benchmark::DoNotOptimize(stream.data());
    ops += stream.size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(ops));
}
BENCHMARK(BM_ReferenceExpansion)->Unit(benchmark::kMillisecond);

void BM_HardwiredSynthesis(benchmark::State& state) {
  const auto alg = march::march_a_plus_plus();
  for (auto _ : state) {
    const auto report =
        mbist_hardwired::hardwired_area(alg, {.geometry = kGeom});
    benchmark::DoNotOptimize(report.blocks().data());
  }
}
BENCHMARK(BM_HardwiredSynthesis)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
