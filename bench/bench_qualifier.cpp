// Extension experiment: the static algorithm-qualification matrix.
//
// For every library algorithm x fault class, the qualifier decides by
// exhaustive canonical-array simulation whether detection is Guaranteed,
// Partial (depends on fault parameters / cell position / power-up), or
// None.  This is the table a test engineer reads when choosing what to
// load into the programmable controller — and it is exactly the kind of
// artifact only a *programmable* BIST makes actionable, since a hardwired
// unit cannot act on it.

#include <chrono>

#include "bench_common.h"
#include "march/analysis.h"

int main() {
  using namespace pmbist;
  using namespace pmbist::bench;
  using march::Detection;
  using memsim::FaultClass;
  using Clock = std::chrono::steady_clock;

  std::printf("=== Static qualification matrix (G guaranteed / p partial / "
              "- none) ===\n\n");
  const auto algorithms = march::all_algorithms();
  const auto& classes = memsim::all_fault_classes();
  // The (algorithm x class) sweeps shard across all cores; the rendered
  // table is identical to the serial one by construction.
  const auto t0 = Clock::now();
  const auto table = march::format_analysis_table(algorithms, classes);
  const auto t1 = Clock::now();
  const auto serial_table =
      march::format_analysis_table(algorithms, classes, /*jobs=*/1);
  const auto t2 = Clock::now();
  std::printf("%s\n", table.c_str());
  std::printf(
      "qualification sweep: parallel %.1f ms, serial %.1f ms\n\n",
      std::chrono::duration<double, std::milli>(t1 - t0).count(),
      std::chrono::duration<double, std::milli>(t2 - t1).count());

  Checker c;
  c.check(table == serial_table,
          "the parallel qualification sweep renders the identical table");
  auto verdict = [](const char* alg, FaultClass cls) {
    return march::analyze(march::by_name(alg), cls);
  };

  c.check(verdict("March C", FaultClass::SAF) == Detection::Guaranteed &&
              verdict("March C", FaultClass::CFid) == Detection::Guaranteed,
          "March C guarantees the classic static classes");
  c.check(verdict("March C", FaultClass::DRF) == Detection::None &&
              verdict("March C+", FaultClass::DRF) == Detection::Guaranteed,
          "only the + retention variants guarantee DRF");
  c.check(verdict("March C+", FaultClass::DRDF) == Detection::None &&
              verdict("March C++", FaultClass::DRDF) ==
                  Detection::Guaranteed,
          "only the ++ triple-read variants guarantee weak-cell DRDF");
  c.check(verdict("March SS", FaultClass::WDF) == Detection::Guaranteed &&
              verdict("March C", FaultClass::WDF) == Detection::Partial,
          "March SS guarantees write-disturb faults; March C does not");
  c.check(verdict("March G", FaultClass::SOF) == Detection::Guaranteed &&
              verdict("March C", FaultClass::SOF) == Detection::Partial,
          "(r,w,r)-shaped elements are what guarantee stuck-open detection");
  c.check(verdict("MATS", FaultClass::TF) == Detection::Partial &&
              verdict("March X", FaultClass::TF) == Detection::Guaranteed,
          "MATS leaves falling transitions to power-up luck; March X "
          "closes the gap");

  // Guarantees are monotone along the paper's enhancement chain.
  bool monotone = true;
  for (FaultClass cls : classes) {
    const auto c0 = verdict("March C", cls);
    const auto c1 = verdict("March C+", cls);
    const auto c2 = verdict("March C++", cls);
    if (static_cast<int>(c1) < static_cast<int>(c0) ||
        static_cast<int>(c2) < static_cast<int>(c1))
      monotone = false;
  }
  c.check(monotone, "verdicts are monotone along C -> C+ -> C++");

  return c.finish("bench_qualifier");
}
