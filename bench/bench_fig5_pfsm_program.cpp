// Figure 5 reproduction: the programmable-FSM instruction sequence for
// March C — six SM components (SM0, four SM1 passes, SM5) followed by the
// data-background and port loop-control instructions, executed by the
// 7-state lower controller of Fig. 4(a).

#include "bench_common.h"
#include "bist/controller.h"
#include "march/expand.h"
#include "mbist_pfsm/controller.h"

int main() {
  using namespace pmbist;
  using namespace pmbist::bench;

  std::printf("=== Figure 5: March C programmable-FSM program ===\n\n");
  const auto alg = march::march_c();
  const auto result = mbist_pfsm::compile(alg);
  std::printf("%s\n", result.program.listing().c_str());

  Checker c;
  const auto& code = result.program.instructions();
  c.check(code.size() == 8, "March C compiles to 8 instructions (Fig. 5)");
  c.check(code[0].mode == 0 && !code[0].data_inv,
          "instruction 1 is SM0(up, d=0): write 0 sweep");
  c.check(code[1].mode == 1 && code[2].mode == 1 && code[3].mode == 1 &&
              code[4].mode == 1,
          "instructions 2-5 are the four SM1 passes");
  c.check(!code[1].addr_down && !code[2].addr_down && code[3].addr_down &&
              code[4].addr_down,
          "SM1 passes run up, up, down, down");
  c.check(!code[1].data_inv && code[2].data_inv && !code[3].data_inv &&
              code[4].data_inv,
          "SM1 data parameters alternate d=0,1,0,1");
  c.check(code[5].mode == 5, "instruction 6 is SM5(up): read sweep");
  c.check(code[6].ctrl && !code[6].ctrl_op && code[7].ctrl && code[7].ctrl_op,
          "instructions 7-8 are the path-A data loop and path-B port loop");

  // The lower controller realizes the program cycle-accurately.
  mbist_pfsm::PfsmController ctrl{
      {.geometry = kBitOriented, .buffer_depth = kPfsmDepth}};
  ctrl.load(result.program);
  const auto stream = bist::collect_ops(ctrl, 1'000'000);
  c.check(stream == march::expand(alg, kBitOriented),
          "the two-level controller replays March C exactly");

  return c.finish("bench_fig5_pfsm_program");
}
