// Extension experiment: the data-background sweep ablation.
//
// Word-oriented support (the LoopData instruction / path-A loop of the
// paper's controllers) repeats the whole algorithm once per standard data
// background.  The backgrounds exist for intra-word coupling faults: with
// the all-zeros background every bit of a word always carries the same
// value, so a disturb between two bits of the same word can never
// contradict the expected data.  This bench sweeps how many backgrounds
// are applied (1 = all-zeros only .. all log2(W)+1) and measures
// intra-word coupling detection — quantifying what each extra pass buys.

#include "bench_common.h"
#include "march/coverage.h"
#include "march/expand.h"

int main() {
  using namespace pmbist;
  using namespace pmbist::bench;

  const memsim::MemoryGeometry geom{.address_bits = 5, .word_bits = 8,
                                    .num_ports = 1};
  const auto faults = march::make_intra_word_cf_universe(geom, 4242, 128);
  const auto alg = march::march_c();
  const int all = static_cast<int>(
      march::standard_backgrounds(geom.word_bits).size());

  std::printf("=== Data-background ablation (March C, 32 x 8 array, %zu "
              "intra-word coupling faults, parallel campaigns) ===\n\n",
              faults.size());
  std::printf("  %12s %12s %12s\n", "backgrounds", "ops", "detected");

  Checker c;
  std::vector<double> ratios;
  for (int n = 1; n <= all; ++n) {
    const auto cell = march::evaluate_with_backgrounds(alg, geom, faults, n);
    const auto ops = march::expanded_op_count(alg, geom) /
                     static_cast<std::uint64_t>(all) *
                     static_cast<std::uint64_t>(n);
    std::printf("  %12d %12llu %11.1f%%\n", n,
                static_cast<unsigned long long>(ops), 100.0 * cell.ratio());
    ratios.push_back(cell.ratio());
  }
  std::printf("\n");

  // Transition-triggered intra-word disturbs (CFin/CFid) are visible even
  // with uniform data — the disturb settles after the simultaneous write —
  // but state-dependent couplings (CFst) need backgrounds that put the
  // aggressor and victim bits in *different* states.
  c.check(ratios.front() < 0.80,
          "the all-zeros background alone misses a meaningful fraction of "
          "intra-word coupling");
  c.check(ratios.back() - ratios.front() > 0.2,
          "the sweep buys a substantial coverage increment");
  for (std::size_t i = 1; i < ratios.size(); ++i)
    c.check(ratios[i] >= ratios[i - 1] - 1e-9,
            "coverage is monotone in the number of backgrounds (" +
                std::to_string(i + 1) + ")");
  c.check(ratios.back() > 0.9,
          "the full standard sweep detects (nearly) all intra-word "
          "coupling faults");

  // Cross-check: inter-word coupling does not need the sweep at all.
  const auto inter = march::make_fault_universe(memsim::FaultClass::CFin,
                                                geom, 4242, 64);
  const auto one_bg = march::evaluate_with_backgrounds(alg, geom, inter, 1);
  std::printf("  inter-word CFin with 1 background: %d/%d\n\n",
              one_bg.detected, one_bg.total);
  c.check(one_bg.detected == one_bg.total,
          "inter-word coupling is fully covered by any single background");

  return c.finish("bench_backgrounds");
}
