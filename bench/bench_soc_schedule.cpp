// Extension experiment: SoC-level test scheduling.  The paper's Section 1
// motivates programmable MBIST with chips carrying many heterogeneous
// embedded memories; this bench runs the 9-memory demo chip end-to-end
// through soc::Scheduler and checks the orchestration claims:
//
//   * results are bit-identical for jobs in {1, 2, 8} (determinism),
//   * the schedule never exceeds the power budget and never overlaps two
//     sessions of one controller-sharing group,
//   * modeled durations are exact (scheduled cycles == executed cycles),
//   * tightening the budget never shortens the chip test,
//   * parallel execution is >= 2x faster than --jobs 1 (gated only on
//     >= 4 hardware cores),
//
// and emits the headline numbers as BENCH_soc.json.

#include <algorithm>
#include <cstdio>
#include <thread>

#include "bench_common.h"
#include "soc/scheduler.h"

int main() {
  using namespace pmbist;
  using namespace pmbist::bench;

  std::printf("=== SoC test scheduling (demo chip: 9 memories, shared "
              "controllers, power budget) ===\n\n");

  Checker c;

  // --- determinism + constraint compliance on the base demo chip ------
  const auto chip = soc::demo_soc();
  const auto plan = soc::demo_plan();
  const auto r1 = soc::run_soc(chip, plan, {.jobs = 1});
  const auto r2 = soc::run_soc(chip, plan, {.jobs = 2});
  const auto r8 = soc::run_soc(chip, plan, {.jobs = 8});
  c.check(r1 == r2 && r1 == r8,
          "SocResult is bit-identical for jobs in {1, 2, 8}");
  c.check(r1.all_healthy(),
          "all 9 memories healthy (7 clean, 2 repaired + retested)");

  const double budget = plan.power().budget;
  bool power_ok = true, groups_ok = true, exact_ok = true;
  for (const auto& s : r1.schedule) {
    double at_start = 0.0;
    for (const auto& o : r1.schedule)
      if (o.start_cycle <= s.start_cycle && s.start_cycle < o.end_cycle())
        at_start += o.power_weight;
    if (at_start > budget + 1e-9) power_ok = false;
    for (const auto& o : r1.schedule)
      if (&o != &s && !s.share_group.empty() &&
          s.share_group == o.share_group && s.start_cycle < o.end_cycle() &&
          o.start_cycle < s.end_cycle())
        groups_ok = false;
    const auto it = std::find_if(
        r1.instances.begin(), r1.instances.end(),
        [&](const auto& r) { return r.memory == s.memory; });
    if (it == r1.instances.end() || it->session.cycles != s.test_cycles)
      exact_ok = false;
  }
  c.check(power_ok, "summed toggle weight never exceeds the power budget");
  c.check(groups_ok, "sessions of one sharing group never overlap");
  c.check(exact_ok,
          "modeled durations are exact: scheduled == executed cycles");

  // --- budget sweep: tighter power never shortens the chip test -------
  std::printf("power-budget sweep (makespan in cycles):\n");
  auto sweep_plan = plan;
  std::uint64_t previous = 0;
  bool monotonic = true;
  for (const double b : {0.0, 96.0, 48.0, 30.0, 23.0}) {
    sweep_plan.set_power_budget(b);
    const auto schedule =
        soc::Scheduler{}.compute_schedule(chip, sweep_plan);
    std::uint64_t makespan = 0;
    for (const auto& s : schedule)
      makespan = std::max(makespan, s.end_cycle());
    std::printf("  budget %5.1f -> %8llu\n", b,
                static_cast<unsigned long long>(makespan));
    if (makespan < previous) monotonic = false;
    previous = makespan;
  }
  c.check(monotonic, "tightening the budget never shortens the makespan");

  // --- wall-clock speedup on a scaled-up chip -------------------------
  // extra_addr_bits=4 makes every array 16x larger so each session is
  // heavy enough for timing.
  const auto big_chip = soc::demo_soc(4);
  const auto serial = soc::run_soc(big_chip, plan, {.jobs = 1});
  const auto parallel = soc::run_soc(big_chip, plan, {.jobs = 0});
  c.check(serial == parallel, "scaled chip: jobs=0 matches jobs=1 exactly");

  const unsigned cores = std::thread::hardware_concurrency();
  const double speedup = parallel.wall_seconds > 0.0
                             ? serial.wall_seconds / parallel.wall_seconds
                             : 1.0;
  std::printf("\nscaled chip (16x arrays): serial %.1f ms, all-cores %.1f ms "
              "(%.2fx on %u cores)\n\n",
              serial.wall_seconds * 1e3, parallel.wall_seconds * 1e3, speedup,
              cores);
  if (cores >= 4) {
    c.check(speedup >= 2.0,
            "parallel whole-chip test is >= 2x faster than --jobs 1 on "
            ">= 4 cores");
  } else {
    std::printf("  [note] %u hardware core(s): speedup gate (>= 2x on >= 4 "
                "cores) not applicable\n", cores);
  }

  // --- artifact -------------------------------------------------------
  if (std::FILE* json = std::fopen("BENCH_soc.json", "w")) {
    std::fprintf(json,
                 "{\n"
                 "  \"chip\": \"%s\",\n"
                 "  \"memories\": %zu,\n"
                 "  \"makespan_cycles\": %llu,\n"
                 "  \"peak_power\": %g,\n"
                 "  \"power_budget\": %g,\n"
                 "  \"healthy\": %d,\n"
                 "  \"serial_ms\": %.3f,\n"
                 "  \"parallel_ms\": %.3f,\n"
                 "  \"speedup_vs_serial\": %.3f,\n"
                 "  \"hardware_cores\": %u\n"
                 "}\n",
                 chip.name().c_str(), r1.instances.size(),
                 static_cast<unsigned long long>(r1.makespan_cycles),
                 r1.peak_power, budget, r1.healthy_count(),
                 serial.wall_seconds * 1e3, parallel.wall_seconds * 1e3,
                 speedup, cores);
    std::fclose(json);
    std::printf("wrote BENCH_soc.json\n\n");
  } else {
    c.check(false, "BENCH_soc.json is writable");
  }

  return c.finish("bench_soc_schedule");
}
