// Table 3 reproduction: "Adjusted Size of Microcode-Based Controller".
//
// The paper redesigns the microcode storage unit with IBM scan-only
// storage cells — legal because the microcode storage holds static
// instructions "with no dependence on the functional clock", unlike the
// pFSM buffer, which shifts every march component and therefore must keep
// full-rate cells.  The cells are "approximately 4 to 5 times smaller";
// the redesign shrinks the whole controller by roughly half (the paper's
// partially-garbled "approximately 6_%" observation; our model lands at
// ~50% because the storage unit is ~2/3 of the unit), and brings the
// microcode unit's overhead into the neighbourhood of the enhanced
// non-programmable controllers.

#include "bench_common.h"

int main() {
  using namespace pmbist;
  using namespace pmbist::bench;
  const auto lib = netlist::TechLibrary::cmos5s();

  std::printf("=== Table 3: adjusted microcode-based controller (scan-only "
              "storage cells) ===\n\n");
  std::printf("  scan-only cell shrink factor: %.2fx (paper: 4-5x)\n\n",
              lib.scan_only_shrink_factor());

  struct Row {
    const char* label;
    memsim::MemoryGeometry geometry;
  };
  const Row rows[] = {{"Bit-Oriented", kBitOriented},
                      {"Word-Oriented", kWordOriented},
                      {"Multiport", kMultiport}};

  Checker c;
  std::printf("  %-16s %16s %16s %12s\n", "Configuration", "full-scan (GE)",
              "adjusted (GE)", "reduction");
  for (const auto& row : rows) {
    mbist_ucode::AreaConfig cfg{.geometry = row.geometry,
                                .storage_depth = kUcodeDepth};
    const double full = mbist_ucode::microcode_area(cfg).total_ge(lib);
    cfg.storage_cell = netlist::StorageCellClass::ScanOnly;
    const double adj = mbist_ucode::microcode_area(cfg).total_ge(lib);
    const double reduction = (full - adj) / full;
    std::printf("  %-16s %16.1f %16.1f %11.1f%%\n", row.label, full, adj,
                100.0 * reduction);
    c.check(reduction > 0.40 && reduction < 0.70,
            std::string(row.label) +
                ": storage redesign cuts the unit by roughly half");
  }
  std::printf("\n");

  // Post-adjustment comparisons the paper draws from Tables 1-3.
  const auto adjusted = method_areas(kBitOriented, true);
  const auto plain = method_areas(kBitOriented, false);
  c.check(row_ge(adjusted, "Microcode-Based (adj.)") <
              row_ge(plain, "Prog. FSM-Based"),
          "adjusted microcode < programmable FSM (with better flexibility)");
  const double adj_ge = row_ge(adjusted, "Microcode-Based (adj.)");
  const double hw_app = row_ge(plain, "March A++");
  const double hw_c = row_ge(plain, "March C");
  c.check((adj_ge - hw_app) < (adj_ge - hw_c),
          "adjusted microcode is 'comparable' with the enhanced "
          "non-programmable units (gap shrinks toward A++)");
  std::printf("  gap to hardwired March C  : %8.1f GE\n", adj_ge - hw_c);
  std::printf("  gap to hardwired March A++: %8.1f GE\n\n", adj_ge - hw_app);

  return c.finish("bench_table3_adjusted_microcode");
}
