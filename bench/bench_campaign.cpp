// Campaign kernel benchmark: the scalar one-memory-per-fault reference
// against the packed PPSFP kernel (64 fault instances per lane-packed
// memory, memsim/packed_memory.h), over the full algorithm library and
// every campaign fault class.
//
// Three claims are gated:
//   * the packed kernel's records are byte-identical to the scalar
//     reference on every (algorithm x fault-class) pair,
//   * packed is >= 5x faster than scalar at jobs=1 (pure lane-level
//     parallelism — no threads involved, so the gate is core-count
//     independent),
//   * the packed kernel is deterministic across the jobs sweep.
//
// Headline numbers (per-class breakdown, jobs sweep) are emitted as
// BENCH_campaign.json; EXPERIMENTS.md records the table.

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "march/campaign.h"
#include "march/coverage.h"

int main() {
  using namespace pmbist;
  using namespace pmbist::bench;
  using memsim::FaultClass;
  using Clock = std::chrono::steady_clock;

  std::printf("=== Campaign kernels: scalar reference vs packed PPSFP "
              "(full library x all fault classes) ===\n\n");

  const memsim::MemoryGeometry geom{.address_bits = 8, .word_bits = 1,
                                    .num_ports = 1};
  constexpr std::uint64_t kSeed = 2026;
  constexpr int kInstances = 256;  // 4 lane-packs per (alg, class) campaign

  const auto algs = march::all_algorithms();
  const auto& classes = memsim::all_fault_classes();

  Checker c;

  auto ms_since = [](Clock::time_point t0) {
    return std::chrono::duration<double, std::milli>(Clock::now() - t0)
        .count();
  };

  // --- per-fault-class breakdown, scalar vs packed at jobs=1 ----------
  struct ClassRow {
    std::string name;
    double scalar_ms = 0.0;
    double packed_ms = 0.0;
    int detected = 0;
    int total = 0;
  };
  std::vector<ClassRow> rows;
  bool all_identical = true;
  double scalar_total_ms = 0.0;
  double packed_total_ms = 0.0;

  for (const FaultClass cls : classes) {
    ClassRow row;
    row.name = memsim::fault_class_name(cls);
    for (const auto& alg : algs) {
      const auto universe =
          march::make_fault_universe(cls, geom, kSeed, kInstances);

      const auto t0 = Clock::now();
      const auto scalar = march::run_campaign(
          alg, geom, universe,
          {.jobs = 1, .powerup_seed = kSeed,
           .kernel = march::CampaignKernel::Scalar});
      row.scalar_ms += ms_since(t0);

      const auto t1 = Clock::now();
      const auto packed = march::run_campaign(
          alg, geom, universe,
          {.jobs = 1, .powerup_seed = kSeed,
           .kernel = march::CampaignKernel::Packed});
      row.packed_ms += ms_since(t1);

      if (scalar.records != packed.records) all_identical = false;
      row.detected += packed.detected();
      row.total += packed.total();
    }
    scalar_total_ms += row.scalar_ms;
    packed_total_ms += row.packed_ms;
    rows.push_back(std::move(row));
  }

  std::printf("per-fault-class wall time over %zu algorithms x %d "
              "instances (jobs=1):\n",
              algs.size(), kInstances);
  std::printf("  %-6s %12s %12s %9s %12s\n", "class", "scalar (ms)",
              "packed (ms)", "speedup", "detected");
  for (const auto& r : rows)
    std::printf("  %-6s %12.1f %12.1f %8.1fx %7d/%d\n", r.name.c_str(),
                r.scalar_ms, r.packed_ms,
                r.packed_ms > 0 ? r.scalar_ms / r.packed_ms : 1.0,
                r.detected, r.total);

  const double kernel_speedup =
      packed_total_ms > 0.0 ? scalar_total_ms / packed_total_ms : 1.0;
  const unsigned cores = std::thread::hardware_concurrency();
  std::printf("\ntotal: scalar %.1f ms, packed %.1f ms -> %.1fx at jobs=1 "
              "(%u core(s); lane-parallelism only)\n\n",
              scalar_total_ms, packed_total_ms, kernel_speedup, cores);

  c.check(all_identical,
          "packed records are byte-identical to the scalar reference on "
          "every algorithm x fault-class pair");
  c.check(kernel_speedup >= 5.0,
          "the packed kernel is >= 5x faster than the scalar reference at "
          "jobs=1 (core-count independent)");

  // --- jobs sweep on the packed kernel --------------------------------
  // One heavyweight campaign (the longest algorithm, the largest
  // universe) repeated across worker counts; lane-packs are the shard
  // unit, so 4 packs bound the useful parallelism at 4 workers.
  const auto sweep_universe =
      march::make_fault_universe(FaultClass::CFid, geom, kSeed, kInstances);
  const auto sweep_alg = march::march_ss();
  std::vector<std::pair<int, double>> sweep;
  bool sweep_identical = true;
  march::CampaignResult sweep_reference;
  for (const int jobs : {1, 2, 4, 8}) {
    const auto t0 = Clock::now();
    auto result = march::run_campaign(
        sweep_alg, geom, sweep_universe,
        {.jobs = jobs, .powerup_seed = kSeed,
         .kernel = march::CampaignKernel::Packed});
    sweep.emplace_back(jobs, ms_since(t0));
    if (jobs == 1)
      sweep_reference = std::move(result);
    else if (result.records != sweep_reference.records)
      sweep_identical = false;
  }
  std::printf("packed jobs sweep (March SS x %d CFid instances = 4 "
              "lane-packs):\n",
              kInstances);
  for (const auto& [jobs, ms] : sweep)
    std::printf("  jobs=%d  %8.2f ms\n", jobs, ms);
  std::printf("\n");
  c.check(sweep_identical,
          "packed records are invariant across the jobs sweep");

  // --- artifact -------------------------------------------------------
  if (std::FILE* json = std::fopen("BENCH_campaign.json", "w")) {
    std::fprintf(json,
                 "{\n"
                 "  \"geometry\": \"%dx%dx%d\",\n"
                 "  \"algorithms\": %zu,\n"
                 "  \"instances_per_class\": %d,\n"
                 "  \"scalar_jobs1_ms\": %.3f,\n"
                 "  \"packed_jobs1_ms\": %.3f,\n"
                 "  \"kernel_speedup\": %.3f,\n"
                 "  \"records_identical\": %s,\n"
                 "  \"hardware_cores\": %u,\n",
                 geom.address_bits, geom.word_bits, geom.num_ports,
                 algs.size(), kInstances, scalar_total_ms, packed_total_ms,
                 kernel_speedup, all_identical ? "true" : "false", cores);
    std::fprintf(json, "  \"per_class\": [\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const auto& r = rows[i];
      std::fprintf(json,
                   "    {\"class\": \"%s\", \"scalar_ms\": %.3f, "
                   "\"packed_ms\": %.3f, \"speedup\": %.3f, "
                   "\"detected\": %d, \"total\": %d}%s\n",
                   r.name.c_str(), r.scalar_ms, r.packed_ms,
                   r.packed_ms > 0 ? r.scalar_ms / r.packed_ms : 1.0,
                   r.detected, r.total, i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(json, "  ],\n  \"packed_jobs_sweep_ms\": {");
    for (std::size_t i = 0; i < sweep.size(); ++i)
      std::fprintf(json, "%s\"%d\": %.3f", i == 0 ? "" : ", ",
                   sweep[i].first, sweep[i].second);
    std::fprintf(json, "}\n}\n");
    std::fclose(json);
    std::printf("wrote BENCH_campaign.json\n\n");
  } else {
    c.check(false, "BENCH_campaign.json is writable");
  }

  return c.finish("bench_campaign");
}
