// Extension experiment S: the fleet-scale BIST service (docs/SERVE.md).
// A load generator drives serve::Server with a mixed campaign/lint
// workload through concurrent synchronous clients, sweeping the session
// worker count, and gates the properties that make the service worth
// running instead of one-shot CLI processes:
//
//   * every response payload is byte-identical across all worker counts
//     (the serve determinism/equivalence contract under concurrency);
//   * the cross-request content-hash caches actually hit — a fleet
//     re-testing the same algorithms pays one march-stream expansion
//     total, and repeated lint requests skip the prover entirely;
//   * throughput does not degrade as sessions are added.
//
// Emits BENCH_serve.json with the worker sweep (throughput, p50/p99
// latency) and the cache hit rates.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/json.h"
#include "serve/server.h"

namespace {

using Clock = std::chrono::steady_clock;
namespace json = pmbist::common::json;

/// Payload of the terminal event, or "" when the request failed.
std::string result_payload(const std::vector<std::string>& events) {
  if (events.empty()) return {};
  const json::Value doc = json::Value::parse(events.back());
  const json::Value* kind = doc.find("event");
  const json::Value* payload = doc.find("payload");
  if (kind == nullptr || kind->as_string() != "result" || payload == nullptr)
    return {};
  return payload->as_string();
}

struct SweepPoint {
  int sessions = 0;
  double wall_ms = 0.0;
  double throughput_rps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double stream_hit_rate = 0.0;
  double lint_hit_rate = 0.0;
};

}  // namespace

int main() {
  using namespace pmbist;
  using namespace pmbist::bench;

  std::printf("=== Fleet-scale BIST service (mixed campaign/lint workload, "
              "session-worker sweep) ===\n\n");

  Checker c;

  // The workload: 48 requests, 2/3 campaigns cycling over four library
  // algorithms on one shared geometry (so the march-stream cache can
  // serve later requests), 1/3 lint requests cycling over two inputs.
  // Per-request jobs=1: a fleet front end amortizes across requests, not
  // within one (docs/SERVE.md, "Sizing").
  const char* algorithms[] = {"MATS", "MATS+", "March X", "March C"};
  const char* lint_inputs[] = {"March C", "MATS+"};
  constexpr int kRequests = 48;
  std::vector<std::string> workload;
  int campaigns = 0;
  int lints = 0;
  for (int i = 0; i < kRequests; ++i) {
    json::Value req = json::Value::object();
    std::string id = "r";
    id += std::to_string(i);
    req.set("id", json::Value::string(std::move(id)));
    if (i % 3 == 2) {
      req.set("kind", json::Value::string("lint"));
      req.set("input", json::Value::string(lint_inputs[i % 2]));
      ++lints;
    } else {
      req.set("kind", json::Value::string("campaign"));
      req.set("algorithm", json::Value::string(algorithms[i % 4]));
      req.set("addr_bits", json::Value::number(std::int64_t{6}));
      req.set("samples", json::Value::number(std::int64_t{32}));
      req.set("jobs", json::Value::number(std::int64_t{1}));
      json::Value classes = json::Value::array();
      for (const char* cls : {"SAF", "TF", "CFid"})
        classes.push(json::Value::string(cls));
      req.set("classes", std::move(classes));
      ++campaigns;
    }
    workload.push_back(req.dump());
  }

  constexpr int kClients = 8;
  std::vector<SweepPoint> sweep;
  std::vector<std::string> reference_payloads;  // from the sessions=1 run
  bool all_equivalent = true;
  bool all_completed = true;

  for (const int sessions : {1, 2, 4, 8}) {
    serve::Server server{{.sessions = sessions}};
    std::vector<std::string> payloads(workload.size());
    std::vector<double> latencies_ms(workload.size());

    const auto t0 = Clock::now();
    std::vector<std::thread> clients;
    for (int client = 0; client < kClients; ++client) {
      clients.emplace_back([&, client] {
        for (std::size_t i = client; i < workload.size(); i += kClients) {
          const auto r0 = Clock::now();
          const auto events = server.call(workload[i]);
          latencies_ms[i] = std::chrono::duration<double, std::milli>(
                                Clock::now() - r0)
                                .count();
          payloads[i] = result_payload(events);
        }
      });
    }
    for (auto& t : clients) t.join();
    const double wall_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - t0).count();

    for (const std::string& payload : payloads)
      if (payload.empty()) all_completed = false;
    if (reference_payloads.empty()) {
      reference_payloads = payloads;
    } else if (payloads != reference_payloads) {
      all_equivalent = false;
    }

    std::vector<double> sorted = latencies_ms;
    std::sort(sorted.begin(), sorted.end());
    const auto stats = server.stats();
    auto rate = [](std::uint64_t hits, std::uint64_t misses) {
      const auto total = hits + misses;
      return total == 0 ? 0.0 : static_cast<double>(hits) / total;
    };
    SweepPoint point{
        .sessions = sessions,
        .wall_ms = wall_ms,
        .throughput_rps = wall_ms > 0.0 ? 1e3 * kRequests / wall_ms : 0.0,
        .p50_ms = sorted[sorted.size() / 2],
        .p99_ms = sorted[sorted.size() * 99 / 100],
        .stream_hit_rate = rate(stats.streams.hits, stats.streams.misses),
        .lint_hit_rate = rate(stats.lints.hits, stats.lints.misses)};
    sweep.push_back(point);

    std::printf("  sessions=%d  wall %7.1f ms  %7.1f req/s  p50 %6.2f ms  "
                "p99 %6.2f ms  stream hit-rate %.3f  lint hit-rate %.3f\n",
                sessions, point.wall_ms, point.throughput_rps, point.p50_ms,
                point.p99_ms, point.stream_hit_rate, point.lint_hit_rate);
  }
  std::printf("\n");

  c.check(all_completed, "every request reached a result payload in every "
                         "configuration");
  c.check(all_equivalent,
          "response payloads are byte-identical across sessions in "
          "{1, 2, 4, 8} under concurrent mixed-kind clients");
  c.check(sweep.front().stream_hit_rate > 0.0,
          "the march-stream cache hits across requests (four algorithms, "
          "32 campaign requests)");
  // 4 algorithms x (1 miss + 2 hits) on first encounter, all-hit after.
  c.check(sweep.front().stream_hit_rate > 0.8,
          "stream expansions are paid once per algorithm, not per request");
  c.check(sweep.front().lint_hit_rate > 0.0,
          "the lint verdict cache answers repeated requests");
  const double single = sweep.front().throughput_rps;
  double best_multi = 0.0;
  for (const auto& p : sweep)
    if (p.sessions > 1) best_multi = std::max(best_multi, p.throughput_rps);
  c.check(best_multi >= 0.8 * single,
          "adding session workers does not degrade throughput (best "
          "multi-session >= 0.8x single-session)");

  // Verdict-cache key discipline: every lint option that changes the
  // verdict must be part of the cache key.  A branchy image (a no-op cell
  // loop whose back edge comes from the branch-register dataflow) lints to
  // different verdicts under different --against / --storage-depth
  // settings; a key that ignored those options would replay a stale
  // verdict for the same input text.
  {
    serve::Server server{{.sessions = 1}};
    const std::string image =
        "; pmbist microcode image v1\n; name: bench branchy\n"
        "141\n001\n080\n121\n284\n300\n";
    auto lint_line = [&](const char* id, const char* against,
                         int storage_depth) {
      json::Value req = json::Value::object();
      req.set("id", json::Value::string(id));
      req.set("kind", json::Value::string("lint"));
      req.set("input", json::Value::string(image));
      req.set("unit", json::Value::string("bench.ucode.hex"));
      if (against[0] != '\0')
        req.set("against", json::Value::string(against));
      req.set("storage_depth", json::Value::number(
                                   std::int64_t{storage_depth}));
      return req.dump();
    };
    auto lint_misses = [&] { return server.stats().lints.misses; };
    auto lint_hits = [&] { return server.stats().lints.hits; };

    const auto m0 = lint_misses();
    const std::string plain = result_payload(
        server.call(lint_line("v0", "", 32)));
    const std::string plain_again = result_payload(
        server.call(lint_line("v1", "", 32)));
    const auto h1 = lint_hits();
    const std::string against = result_payload(
        server.call(lint_line("v2", "up(w0); up(r0)", 32)));
    const std::string depth = result_payload(
        server.call(lint_line("v3", "up(w0); up(r0)", 4)));
    const auto m1 = lint_misses();
    const std::string against_again = result_payload(
        server.call(lint_line("v4", "up(w0); up(r0)", 32)));
    const auto h2 = lint_hits();

    c.check(!plain.empty() && plain == plain_again && h1 >= 1,
            "identical lint requests replay one cached verdict "
            "byte-identically");
    c.check(m1 - m0 == 3,
            "against and storage-depth each produce a distinct verdict-cache "
            "key (3 distinct option sets -> 3 misses)");
    c.check(against != plain && depth != against,
            "distinct lifter/lint options produce distinct payloads, never a "
            "stale verdict for the same input");
    c.check(against_again == against && h2 > h1,
            "repeating an option set hits its own cache entry, not a "
            "neighboring one");
  }

  if (std::FILE* out = std::fopen("BENCH_serve.json", "w")) {
    std::fprintf(out,
                 "{\n"
                 "  \"workload\": {\"requests\": %d, \"campaigns\": %d, "
                 "\"lints\": %d, \"clients\": %d},\n"
                 "  \"equivalent_across_sessions\": %s,\n"
                 "  \"sweep\": [\n",
                 kRequests, campaigns, lints, kClients,
                 all_equivalent ? "true" : "false");
    for (std::size_t i = 0; i < sweep.size(); ++i) {
      const auto& p = sweep[i];
      std::fprintf(out,
                   "    {\"sessions\": %d, \"wall_ms\": %.3f, "
                   "\"throughput_rps\": %.1f, \"p50_ms\": %.3f, "
                   "\"p99_ms\": %.3f, \"stream_hit_rate\": %.4f, "
                   "\"lint_hit_rate\": %.4f}%s\n",
                   p.sessions, p.wall_ms, p.throughput_rps, p.p50_ms, p.p99_ms,
                   p.stream_hit_rate, p.lint_hit_rate,
                   i + 1 < sweep.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    std::printf("wrote BENCH_serve.json\n\n");
  }

  return c.finish("bench_serve");
}
