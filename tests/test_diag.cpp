// Diagnostics tests: fail bitmaps, the signature classifier, and the
// transparent (on-line) BIST transform — the applications the paper cites
// to justify programmable controllers.

#include <gtest/gtest.h>

#include "diag/bitmap.h"
#include "diag/classify.h"
#include "diag/transparent.h"
#include "march/library.h"

namespace {

using namespace pmbist;
using memsim::FaultClass;
using memsim::MemoryGeometry;

constexpr MemoryGeometry kGeom{.address_bits = 4, .word_bits = 4,
                               .num_ports = 1};

// --- bitmap -------------------------------------------------------------------

TEST(Bitmap, AccumulatesFailingBits) {
  diag::FailBitmap bm{kGeom};
  std::vector<march::Failure> failures;
  failures.push_back({0, march::MemOp::read(0, 3, 0xF), 0xD});  // bit 1
  failures.push_back({1, march::MemOp::read(0, 3, 0x0), 0x2});  // bit 1
  failures.push_back({2, march::MemOp::read(0, 7, 0x0), 0x9});  // bits 0,3
  bm.accumulate(failures);
  EXPECT_EQ(bm.fail_count(3, 1), 2);
  EXPECT_EQ(bm.fail_count(7, 0), 1);
  EXPECT_EQ(bm.fail_count(7, 3), 1);
  EXPECT_EQ(bm.fail_count(7, 1), 0);
  EXPECT_EQ(bm.total_events(), 4);
  EXPECT_EQ(bm.failing_cells().size(), 3u);
  EXPECT_EQ(bm.row_histogram().at(3), 2);
  EXPECT_EQ(bm.column_histogram().at(1), 2);
  const std::string art = bm.render();
  EXPECT_NE(art.find("addr 3"), std::string::npos);
  EXPECT_NE(art.find('X'), std::string::npos);
}

TEST(Bitmap, CleanRender) {
  diag::FailBitmap bm{kGeom};
  EXPECT_NE(bm.render().find("clean"), std::string::npos);
}

// --- classifier -----------------------------------------------------------------

diag::Diagnosis diagnose_fault(const memsim::Fault& fault) {
  memsim::FaultyMemory mem{kGeom, 5};
  mem.add_fault(fault);
  return diag::diagnose(mem);
}

TEST(Classify, CleanMemory) {
  memsim::FaultyMemory mem{kGeom, 5};
  const auto d = diag::diagnose(mem);
  EXPECT_FALSE(d.any_failure);
  EXPECT_TRUE(d.candidates.empty());
}

TEST(Classify, StuckAt0SignatureNamesCellAndCandidates) {
  const auto d = diagnose_fault(memsim::StuckAtFault{{9, 2}, false});
  EXPECT_TRUE(d.any_failure);
  EXPECT_TRUE(d.candidates.contains(FaultClass::SAF));
  EXPECT_TRUE(d.candidates.contains(FaultClass::TF));
  ASSERT_EQ(d.suspect_cells.size(), 1u);
  EXPECT_EQ(d.suspect_cells[0], (memsim::BitRef{9, 2}));
}

TEST(Classify, StuckAt1Signature) {
  const auto d = diagnose_fault(memsim::StuckAtFault{{2, 0}, true});
  EXPECT_TRUE(d.candidates.contains(FaultClass::SAF));
}

TEST(Classify, RetentionFaultOnlySeenAfterPause) {
  const auto d = diagnose_fault(memsim::DataRetentionFault{
      {4, 1}, /*leak_to=*/false, /*hold_time_ns=*/march::kDefaultPauseNs / 2});
  EXPECT_TRUE(d.any_failure);
  EXPECT_EQ(d.candidates,
            (std::set<FaultClass>{FaultClass::DRF}));
}

TEST(Classify, WeakCellOnlySeenByTripleReads) {
  const auto d =
      diagnose_fault(memsim::ReadDestructiveFault{{6, 3}, /*deceptive=*/true});
  EXPECT_TRUE(d.any_failure);
  EXPECT_EQ(d.candidates, (std::set<FaultClass>{FaultClass::DRDF}));
}

TEST(Classify, CouplingProducesMultiAddressCandidates) {
  const auto d = diagnose_fault(
      memsim::InversionCouplingFault{{3, 0}, {11, 0}, /*on_rising=*/true});
  EXPECT_TRUE(d.any_failure);
  EXPECT_TRUE(d.candidates.contains(FaultClass::CFin) ||
              d.candidates.contains(FaultClass::RDF));
}

TEST(Classify, AddressFaultSignature) {
  const auto d = diagnose_fault(memsim::AddressDecoderFault{6, {7}});
  EXPECT_TRUE(d.any_failure);
  EXPECT_TRUE(d.candidates.contains(FaultClass::AF));
  EXPECT_GE(d.suspect_cells.size(), 2u);
}

// --- transparent BIST -------------------------------------------------------------

TEST(Transparent, PreservesContentsOnFaultFreeMemory) {
  memsim::SramModel mem{kGeom, 77};
  std::vector<memsim::Word> before(kGeom.num_words());
  for (memsim::Address a = 0; a < kGeom.num_words(); ++a)
    before[a] = mem.read(0, a);

  const auto r = diag::run_transparent(march::march_c(), mem);
  EXPECT_TRUE(r.passed);
  EXPECT_TRUE(r.contents_preserved);
  for (memsim::Address a = 0; a < kGeom.num_words(); ++a)
    EXPECT_EQ(mem.read(0, a), before[a]) << "addr " << a;
}

TEST(Transparent, RestoresWhenAlgorithmEndsInD1) {
  // MATS leaves d=1; the transform appends a restore pass.
  memsim::SramModel mem{kGeom, 78};
  std::vector<memsim::Word> before(kGeom.num_words());
  for (memsim::Address a = 0; a < kGeom.num_words(); ++a)
    before[a] = mem.read(0, a);
  const auto r = diag::run_transparent(march::mats(), mem);
  EXPECT_TRUE(r.passed);
  EXPECT_TRUE(r.contents_preserved);
  for (memsim::Address a = 0; a < kGeom.num_words(); ++a)
    EXPECT_EQ(mem.read(0, a), before[a]);
}

TEST(Transparent, StillDetectsFaults) {
  memsim::FaultyMemory mem{kGeom, 9};
  mem.add_fault(memsim::StuckAtFault{{5, 1}, true});
  const auto r = diag::run_transparent(march::march_c(), mem);
  EXPECT_FALSE(r.passed);
  ASSERT_FALSE(r.failures.empty());
  EXPECT_EQ(r.failures.front().op.addr, 5u);
}

TEST(Transparent, StreamXorsSeed) {
  const MemoryGeometry g{.address_bits = 1, .word_bits = 2};
  const std::vector<memsim::Word> seed{0b01, 0b10};
  const auto plain = march::expand(march::march_x(), g);
  const auto trans = diag::transparent_stream(march::march_x(), g, seed);
  ASSERT_EQ(plain.size(), trans.size());
  for (std::size_t i = 0; i < plain.size(); ++i) {
    EXPECT_EQ(trans[i].data, (plain[i].data ^ seed[plain[i].addr]) & 0b11u);
    EXPECT_EQ(trans[i].addr, plain[i].addr);
  }
  EXPECT_THROW((void)diag::transparent_stream(march::march_x(), g, {0}),
               std::invalid_argument);
}

}  // namespace
