// Edge-case hardening across the stack: minimal geometries, fold-blocking
// algorithm shapes, terminal behaviours, and odd-but-legal programs.

#include <gtest/gtest.h>

#include "bist/session.h"
#include "march/library.h"
#include "march/parser.h"
#include "mbist_hardwired/controller.h"
#include "mbist_pfsm/controller.h"
#include "mbist_ucode/controller.h"

namespace {

using namespace pmbist;
using memsim::MemoryGeometry;

// --- assembler fold boundaries ----------------------------------------------

TEST(EdgeAssembler, PauseInsideWindowBlocksTheFold) {
  // Symmetric halves separated by a pause cannot fold (the window must be
  // pause-free).
  const auto alg = march::parse(
      "any(w0); up(r0,w1); pause(1ms); down(r0,w1); any(r1)", "pause-split");
  const auto r = mbist_ucode::assemble(alg);
  EXPECT_FALSE(r.used_repeat);
}

TEST(EdgeAssembler, MultiOpFirstElementBlocksTheFold) {
  // The Repeat hardware resets the IC to 1, so the prefix must be exactly
  // one instruction; a two-op initializer blocks the fold even though the
  // remaining elements mirror perfectly.
  const auto alg = march::parse(
      "any(w0,w0); up(r0,w1); up(r1,w0); down(r0,w1); down(r1,w0)",
      "fat-prefix");
  const auto r = mbist_ucode::assemble(alg);
  EXPECT_FALSE(r.used_repeat);
  // Behaviour still exact.
  const MemoryGeometry g{.address_bits = 3};
  mbist_ucode::MicrocodeController ctrl{{.geometry = g}};
  ctrl.load(r.program);
  EXPECT_EQ(bist::collect_ops(ctrl, 1'000'000), march::expand(alg, g));
}

TEST(EdgeAssembler, MixedPauseDurationsRejected) {
  const auto alg = march::parse("any(w0); pause(1ms); any(r0); pause(2ms)",
                                "mixed-pauses");
  EXPECT_THROW((void)mbist_ucode::assemble(alg), mbist_ucode::AssembleError);
  EXPECT_FALSE(mbist_pfsm::is_mappable(alg));
}

TEST(EdgeAssembler, AnyOrderFoldsAsUp) {
  // any(...) canonicalizes to up(...) before fold matching: the mirrored
  // element must therefore be down(...) to fold.
  const auto folds = march::parse(
      "any(w0); any(r0,w1); down(r0,w1); any(r1)", "any-up");
  EXPECT_TRUE(mbist_ucode::assemble(folds).used_repeat);
  const auto no_fold = march::parse(
      "any(w0); any(r0,w1); any(r0,w1); any(r1)", "any-any");
  EXPECT_FALSE(mbist_ucode::assemble(no_fold).used_repeat);
}

// --- minimal geometries --------------------------------------------------------

TEST(EdgeGeometry, TwoWordMemoryEquivalence) {
  const MemoryGeometry g{.address_bits = 1, .word_bits = 1, .num_ports = 1};
  for (const char* name : {"March C", "March A+", "March SS"}) {
    const auto alg = march::by_name(name);
    mbist_ucode::MicrocodeController ucode{{.geometry = g}};
    ucode.load_algorithm(alg);
    mbist_hardwired::HardwiredController hw{alg, {.geometry = g}};
    const auto expected = march::expand(alg, g);
    EXPECT_EQ(bist::collect_ops(ucode, 1'000'000), expected) << name;
    EXPECT_EQ(bist::collect_ops(hw, 1'000'000), expected) << name;
  }
}

TEST(EdgeGeometry, SixtyFourBitWords) {
  const MemoryGeometry g{.address_bits = 2, .word_bits = 64, .num_ports = 1};
  EXPECT_EQ(march::standard_backgrounds(64).size(), 7u);
  mbist_ucode::MicrocodeController ctrl{{.geometry = g}};
  ctrl.load_algorithm(march::mats_plus());
  memsim::SramModel mem{g, 5};
  EXPECT_TRUE(bist::run_session(ctrl, mem).passed());
  EXPECT_EQ(g.word_mask(), ~memsim::Word{0});
}

// --- terminal behaviours ----------------------------------------------------------

TEST(EdgeController, StepAfterDoneIsIdempotent) {
  const MemoryGeometry g{.address_bits = 2};
  mbist_ucode::MicrocodeController ctrl{{.geometry = g}};
  ctrl.load_algorithm(march::mats());
  while (!ctrl.done()) (void)ctrl.step();
  for (int i = 0; i < 4; ++i) EXPECT_EQ(ctrl.step(), std::nullopt);
  EXPECT_TRUE(ctrl.done());
}

TEST(EdgeController, TerminateOnlyProgram) {
  mbist_ucode::Instruction term;
  term.flow = mbist_ucode::Flow::Terminate;
  mbist_ucode::MicrocodeController ctrl{{.geometry = {.address_bits = 2}}};
  ctrl.load(mbist_ucode::MicrocodeProgram{"noop", {term}});
  EXPECT_EQ(bist::collect_ops(ctrl, 100).size(), 0u);
}

TEST(EdgeController, InstructionExhaustionEndsTheTest) {
  // A program that simply runs off the end of the storage terminates via
  // address exhaustion (no Terminate instruction present).
  mbist_ucode::Instruction nop;  // Next / no memory op
  mbist_ucode::MicrocodeController ctrl{
      {.geometry = {.address_bits = 2}, .storage_depth = 4}};
  ctrl.load(mbist_ucode::MicrocodeProgram{"runoff", {nop, nop}});
  EXPECT_EQ(bist::collect_ops(ctrl, 100).size(), 0u);
  EXPECT_TRUE(ctrl.done());
}

TEST(EdgePfsm, ExactFitBuffer) {
  const auto r = mbist_pfsm::compile(march::march_c());
  mbist_pfsm::PfsmController ctrl{
      {.geometry = {.address_bits = 3}, .buffer_depth = r.program.size()}};
  EXPECT_NO_THROW(ctrl.load(r.program));
  EXPECT_EQ(bist::collect_ops(ctrl, 1'000'000),
            march::expand(march::march_c(), {.address_bits = 3}));
}

TEST(EdgeHardwired, SingleElementAlgorithm) {
  const auto alg = march::parse("any(w1)", "w1-only");
  const MemoryGeometry g{.address_bits = 3};
  mbist_hardwired::HardwiredController hw{alg, {.geometry = g}};
  const auto ops = bist::collect_ops(hw, 1'000);
  EXPECT_EQ(ops.size(), 8u);
  for (const auto& op : ops)
    EXPECT_EQ(op.kind, march::MemOp::Kind::Write);
}

TEST(EdgeHardwired, TrailingPauseElement) {
  const auto alg =
      march::parse("any(w0); any(r0); pause(1ms)", "trailing-pause");
  const MemoryGeometry g{.address_bits = 2};
  mbist_hardwired::HardwiredController hw{alg, {.geometry = g}};
  const auto ops = bist::collect_ops(hw, 10'000);
  EXPECT_EQ(ops, march::expand(alg, g));
  EXPECT_EQ(ops.back().kind, march::MemOp::Kind::Pause);

  mbist_ucode::MicrocodeController ucode{{.geometry = g}};
  ucode.load_algorithm(alg);
  EXPECT_EQ(bist::collect_ops(ucode, 10'000), ops);
}

// --- parser extremes -----------------------------------------------------------

TEST(EdgeParser, LargePauseDurations) {
  const auto alg = march::parse("any(w0); pause(4000ms); any(r0)", "long");
  EXPECT_EQ(alg.elements()[1].pause_ns, 4'000'000'000ull);
}

TEST(EdgeParser, ManyOpsPerElement) {
  std::string dsl = "any(w0); up(r0";
  for (int i = 0; i < 30; ++i) dsl += ",w1,r1,w0,r0";
  dsl += ")";
  const auto alg = march::parse(dsl, "wide");
  EXPECT_EQ(alg.elements()[1].ops.size(), 121u);
  // Microcode handles it with a big enough storage; pFSM cannot (> 4 ops).
  mbist_ucode::MicrocodeController ctrl{
      {.geometry = {.address_bits = 2}, .storage_depth = 256}};
  EXPECT_NO_THROW(ctrl.load_algorithm(alg));
  EXPECT_FALSE(mbist_pfsm::is_mappable(alg));
}

TEST(EdgeMemory, AdvanceTimeOnGoldenModelIsNoop) {
  memsim::SramModel mem{{.address_bits = 2}, 1};
  mem.write(0, 1, 1);
  mem.advance_time_ns(1'000'000'000ull);
  EXPECT_EQ(mem.read(0, 1), 1u);
}

}  // namespace
