// Shared-datapath tests: behavioral address/data/port generators, the
// session runner, and the datapath area models.

#include <gtest/gtest.h>

#include "bist/datapath.h"
#include "bist/session.h"
#include "march/library.h"
#include "mbist_ucode/controller.h"

namespace {

using namespace pmbist;
using bist::AddressGenerator;
using bist::DataGenerator;
using bist::PortSequencer;
using march::AddressOrder;

TEST(AddressGenerator, UpTraversal) {
  AddressGenerator gen{3};
  gen.init(AddressOrder::Up);
  EXPECT_EQ(gen.current(), 0u);
  EXPECT_FALSE(gen.descending());
  for (int i = 0; i < 7; ++i) {
    EXPECT_FALSE(gen.at_last());
    gen.step();
  }
  EXPECT_EQ(gen.current(), 7u);
  EXPECT_TRUE(gen.at_last());
}

TEST(AddressGenerator, DownTraversal) {
  AddressGenerator gen{3};
  gen.init(AddressOrder::Down);
  EXPECT_EQ(gen.current(), 7u);
  EXPECT_TRUE(gen.descending());
  for (int i = 0; i < 7; ++i) gen.step();
  EXPECT_EQ(gen.current(), 0u);
  EXPECT_TRUE(gen.at_last());
}

TEST(AddressGenerator, AnyMapsToUp) {
  AddressGenerator gen{2};
  gen.init(AddressOrder::Any);
  EXPECT_EQ(gen.current(), 0u);
  EXPECT_FALSE(gen.descending());
}

TEST(AddressGenerator, SingleBitMemory) {
  AddressGenerator gen{1};
  gen.init(AddressOrder::Up);
  EXPECT_FALSE(gen.at_last());
  gen.step();
  EXPECT_TRUE(gen.at_last());
}

TEST(DataGenerator, BitOrientedHasOneBackground) {
  DataGenerator gen{1};
  EXPECT_EQ(gen.background_count(), 1);
  EXPECT_TRUE(gen.at_last());
  EXPECT_EQ(gen.data_for(false), 0u);
  EXPECT_EQ(gen.data_for(true), 1u);
}

TEST(DataGenerator, WordBackgroundWalk) {
  DataGenerator gen{8};
  EXPECT_EQ(gen.background_count(), 4);
  EXPECT_EQ(gen.background(), 0x00u);
  EXPECT_EQ(gen.data_for(true), 0xFFu);
  gen.next();
  EXPECT_EQ(gen.background(), 0xAAu);
  EXPECT_EQ(gen.data_for(true), 0x55u);
  gen.next();
  gen.next();
  EXPECT_EQ(gen.background(), 0xF0u);
  EXPECT_TRUE(gen.at_last());
  gen.reset();
  EXPECT_EQ(gen.background_index(), 0);
}

TEST(PortSequencer, WalksPorts) {
  PortSequencer seq{3};
  EXPECT_EQ(seq.current(), 0);
  EXPECT_FALSE(seq.at_last());
  seq.next();
  seq.next();
  EXPECT_EQ(seq.current(), 2);
  EXPECT_TRUE(seq.at_last());
  seq.reset();
  EXPECT_EQ(seq.current(), 0);
}

TEST(PortSequencer, SinglePortCostsNothing) {
  const auto lib = netlist::TechLibrary::cmos5s();
  EXPECT_DOUBLE_EQ(PortSequencer::area(1).total_ge(lib), 0.0);
  EXPECT_GT(PortSequencer::area(2).total_ge(lib), 0.0);
}

TEST(DatapathArea, ScalesWithGeometry) {
  const auto lib = netlist::TechLibrary::cmos5s();
  const memsim::MemoryGeometry small{.address_bits = 8, .word_bits = 1,
                                     .num_ports = 1};
  const memsim::MemoryGeometry big{.address_bits = 16, .word_bits = 16,
                                   .num_ports = 4};
  EXPECT_LT(bist::datapath_inventory(small, false).total_ge(lib),
            bist::datapath_inventory(big, false).total_ge(lib));
  EXPECT_LT(bist::datapath_inventory(small, false).total_ge(lib),
            bist::datapath_inventory(small, true).total_ge(lib));
}

TEST(Session, CycleBoundReportsIncomplete) {
  const memsim::MemoryGeometry g{.address_bits = 8};
  mbist_ucode::MicrocodeController ctrl{{.geometry = g}};
  ctrl.load_algorithm(march::march_c());
  memsim::SramModel mem{g, 1};
  const auto r = bist::run_session(ctrl, mem, {.max_cycles = 10});
  EXPECT_FALSE(r.completed());
  EXPECT_FALSE(r.passed());
  EXPECT_EQ(r.cycles, 10u);
}

TEST(Session, FailureLogCapRespected) {
  const memsim::MemoryGeometry g{.address_bits = 4};
  mbist_ucode::MicrocodeController ctrl{{.geometry = g}};
  ctrl.load_algorithm(march::march_c());
  memsim::FaultyMemory mem{g, 1};
  for (memsim::Address a = 0; a < 8; ++a)
    mem.add_fault(memsim::StuckAtFault{{a, 0}, true});
  const auto r = bist::run_session(ctrl, mem, {.max_failures = 3});
  EXPECT_TRUE(r.completed());
  EXPECT_EQ(r.failures.size(), 3u);
}

TEST(Session, TruncationCapsTheLogNotTheRun) {
  // max_failures bounds the captured log only: the run continues to
  // completion, every mismatch is still counted, and passed() stays false.
  const memsim::MemoryGeometry g{.address_bits = 4};
  mbist_ucode::MicrocodeController ctrl{{.geometry = g}};
  ctrl.load_algorithm(march::march_c());
  memsim::FaultyMemory mem{g, 1};
  for (memsim::Address a = 0; a < 8; ++a)
    mem.add_fault(memsim::StuckAtFault{{a, 0}, true});

  const auto full = bist::run_session(ctrl, mem, {.max_failures = 1u << 20});
  const auto capped = bist::run_session(ctrl, mem, {.max_failures = 3});
  ASSERT_GT(full.failures.size(), 3u);
  EXPECT_EQ(full.mismatches, full.failures.size());

  EXPECT_TRUE(capped.completed());
  EXPECT_EQ(capped.failures.size(), 3u);
  EXPECT_EQ(capped.mismatches, full.mismatches);  // counted past capacity
  EXPECT_EQ(capped.cycles, full.cycles);          // run not cut short
  EXPECT_EQ(capped.reads, full.reads);
  EXPECT_FALSE(capped.passed());
  // The captured prefix is the same failures in the same order.
  for (std::size_t i = 0; i < capped.failures.size(); ++i)
    EXPECT_TRUE(capped.failures[i] == full.failures[i]) << i;
}

TEST(Session, ZeroCapacityStillFailsTheSession) {
  const memsim::MemoryGeometry g{.address_bits = 4};
  mbist_ucode::MicrocodeController ctrl{{.geometry = g}};
  ctrl.load_algorithm(march::march_c());
  memsim::FaultyMemory mem{g, 1};
  mem.add_fault(memsim::StuckAtFault{{2, 0}, true});
  const auto r = bist::run_session(ctrl, mem, {.max_failures = 0});
  EXPECT_TRUE(r.completed());
  EXPECT_TRUE(r.failures.empty());
  EXPECT_GT(r.mismatches, 0u);
  EXPECT_FALSE(r.passed());  // an empty log is not a clean run
}

TEST(CollectOps, ThrowsOnRunawayController) {
  // A controller that never terminates must be caught by the bound.
  class Runaway final : public bist::Controller {
   public:
    [[nodiscard]] std::string name() const override { return "runaway"; }
    void reset() override {}
    [[nodiscard]] bool done() const override { return false; }
    std::optional<march::MemOp> step() override { return std::nullopt; }
  };
  Runaway r;
  EXPECT_THROW((void)bist::collect_ops(r, 100), std::runtime_error);
  EXPECT_THROW((void)bist::count_cycles(r, 100), std::runtime_error);
}

TEST(Session, EmptyProgramIsImmediatelyDone) {
  const memsim::MemoryGeometry g{.address_bits = 4};
  mbist_ucode::MicrocodeController ctrl{{.geometry = g}};
  memsim::SramModel mem{g, 1};
  const auto r = bist::run_session(ctrl, mem);
  EXPECT_TRUE(r.completed());
  EXPECT_EQ(r.reads + r.writes, 0u);
}

}  // namespace
