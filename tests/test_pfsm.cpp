// Programmable FSM-based controller tests: SM component set fidelity
// (Eq. 2), the compiler's Fig. 5 program shape for March C, the MEDIUM
// flexibility boundary (which algorithms do NOT map), op-stream
// equivalence, and area-model structure.

#include <gtest/gtest.h>

#include "bist/session.h"
#include "march/library.h"
#include "march/parser.h"
#include "mbist_pfsm/area.h"
#include "mbist_pfsm/controller.h"
#include "netlist/fsm_synth.h"

namespace {

using namespace pmbist;
using mbist_pfsm::PfsmController;
using memsim::MemoryGeometry;

// --- components ------------------------------------------------------------

TEST(PfsmComponents, RealizeMatchesEq2) {
  using march::r0, march::r1, march::w0, march::w1;
  const std::vector<march::MarchOp> sm0_d0{w0()};
  EXPECT_EQ(mbist_pfsm::realize(0, false), sm0_d0);
  const std::vector<march::MarchOp> sm1_d0{r0(), w1()};
  EXPECT_EQ(mbist_pfsm::realize(1, false), sm1_d0);
  const std::vector<march::MarchOp> sm1_d1{r1(), w0()};
  EXPECT_EQ(mbist_pfsm::realize(1, true), sm1_d1);
  const std::vector<march::MarchOp> sm2_d0{r0(), w1(), r1(), w0()};
  EXPECT_EQ(mbist_pfsm::realize(2, false), sm2_d0);
  const std::vector<march::MarchOp> sm3_d1{r1(), w0(), w1()};
  EXPECT_EQ(mbist_pfsm::realize(3, true), sm3_d1);
  const std::vector<march::MarchOp> sm4_d0{r0(), r0(), r0()};
  EXPECT_EQ(mbist_pfsm::realize(4, false), sm4_d0);
  const std::vector<march::MarchOp> sm5_d1{r1()};
  EXPECT_EQ(mbist_pfsm::realize(5, true), sm5_d1);
  const std::vector<march::MarchOp> sm6_d0{r0(), w1(), w0(), w1()};
  EXPECT_EQ(mbist_pfsm::realize(6, false), sm6_d0);
  const std::vector<march::MarchOp> sm7_d0{r0(), w1(), r1()};
  EXPECT_EQ(mbist_pfsm::realize(7, false), sm7_d0);
}

TEST(PfsmComponents, NoComponentExceedsFourOps) {
  for (const auto& comp : mbist_pfsm::component_set())
    EXPECT_LE(comp.ops.size(),
              static_cast<std::size_t>(mbist_pfsm::kMaxComponentOps));
}

TEST(PfsmComponents, MatchElementRoundTrip) {
  for (const auto& comp : mbist_pfsm::component_set()) {
    for (bool d : {false, true}) {
      march::MarchElement e;
      e.order = march::AddressOrder::Up;
      e.ops = mbist_pfsm::realize(comp.id, d);
      const auto m = mbist_pfsm::match_element(e);
      ASSERT_TRUE(m.has_value()) << "SM" << comp.id << " d=" << d;
      // The matched (mode, d) must realize the same ops (the pair need not
      // be identical — e.g. (w1) matches SM0 with d=1 only).
      EXPECT_EQ(mbist_pfsm::realize(m->mode, m->d), e.ops);
    }
  }
}

TEST(PfsmComponents, UnmatchableElements) {
  EXPECT_FALSE(mbist_pfsm::match_element(
                   march::parse("up(r0,r0,r0,w1)").elements()[0])
                   .has_value());
  EXPECT_FALSE(mbist_pfsm::match_element(
                   march::parse("up(r0,w1,r1,w0,r0,w1)").elements()[0])
                   .has_value());
  EXPECT_FALSE(
      mbist_pfsm::match_element(march::MarchElement::pause(100)).has_value());
}

// --- ISA -------------------------------------------------------------------

TEST(PfsmIsa, EncodeDecodeRoundTrip) {
  for (std::uint16_t bits = 0; bits < (1u << mbist_pfsm::kPfsmInstructionBits);
       ++bits) {
    EXPECT_EQ(mbist_pfsm::PfsmInstruction::decode(bits).encode(), bits);
  }
  EXPECT_THROW((void)mbist_pfsm::PfsmInstruction::decode(1u << 9),
               std::invalid_argument);
}

// --- compiler ---------------------------------------------------------------

// The paper's Fig. 5: March C compiles to 6 component instructions plus the
// data-background and port loop instructions.
TEST(PfsmCompiler, MarchCMatchesFig5Shape) {
  const auto r = mbist_pfsm::compile(march::march_c());
  const auto& code = r.program.instructions();
  ASSERT_EQ(code.size(), 8u);

  EXPECT_EQ(code[0].mode, 0);  // SM0(up, d=0)      = w0
  EXPECT_FALSE(code[0].data_inv);
  EXPECT_EQ(code[1].mode, 1);  // SM1(up, d=0)      = r0,w1
  EXPECT_FALSE(code[1].addr_down);
  EXPECT_EQ(code[2].mode, 1);  // SM1(up, d=1)      = r1,w0
  EXPECT_TRUE(code[2].data_inv);
  EXPECT_EQ(code[3].mode, 1);  // SM1(down, d=0)
  EXPECT_TRUE(code[3].addr_down);
  EXPECT_FALSE(code[3].data_inv);
  EXPECT_EQ(code[4].mode, 1);  // SM1(down, d=1)
  EXPECT_TRUE(code[4].addr_down);
  EXPECT_TRUE(code[4].data_inv);
  EXPECT_EQ(code[5].mode, 5);  // SM5(up, d=0)      = r0
  EXPECT_TRUE(code[6].ctrl);   // data loop (path A)
  EXPECT_FALSE(code[6].ctrl_op);
  EXPECT_TRUE(code[7].ctrl);   // port loop (path B)
  EXPECT_TRUE(code[7].ctrl_op);
}

TEST(PfsmCompiler, RetentionVariantUsesHoldBit) {
  const auto r = mbist_pfsm::compile(march::march_c_plus());
  EXPECT_EQ(r.pause_ns, march::kDefaultPauseNs);
  const auto& code = r.program.instructions();
  // March C+ = 6 components of C + SM7 + SM5 + 2 loop instructions; the
  // pauses ride on the hold bits of the preceding instructions.
  ASSERT_EQ(code.size(), 10u);
  EXPECT_TRUE(code[5].hold_after);   // pause after the r0 sweep
  EXPECT_EQ(code[6].mode, 7);        // SM7(d=0) = r0,w1,r1
  EXPECT_TRUE(code[6].hold_after);   // second pause
  EXPECT_EQ(code[7].mode, 5);        // SM5(d=1) = r1
  EXPECT_TRUE(code[7].data_inv);
}

// The MEDIUM-flexibility boundary: triple-read (++) variants and March B do
// not map onto SM0..SM7; everything in the C/A/+ family does.
TEST(PfsmCompiler, FlexibilityBoundary) {
  std::string why;
  EXPECT_TRUE(mbist_pfsm::is_mappable(march::march_c()));
  EXPECT_TRUE(mbist_pfsm::is_mappable(march::march_c_plus()));
  EXPECT_TRUE(mbist_pfsm::is_mappable(march::march_a()));
  EXPECT_TRUE(mbist_pfsm::is_mappable(march::march_a_plus()));
  EXPECT_TRUE(mbist_pfsm::is_mappable(march::mats_plus()));
  EXPECT_TRUE(mbist_pfsm::is_mappable(march::march_x()));
  EXPECT_TRUE(mbist_pfsm::is_mappable(march::march_y()));

  EXPECT_TRUE(mbist_pfsm::is_mappable(march::mats_plus_plus()));
  EXPECT_TRUE(mbist_pfsm::is_mappable(march::march_u()));
  EXPECT_TRUE(mbist_pfsm::is_mappable(march::march_lr()));

  EXPECT_FALSE(mbist_pfsm::is_mappable(march::march_c_plus_plus(), &why));
  EXPECT_NE(why.find("SM"), std::string::npos);
  EXPECT_FALSE(mbist_pfsm::is_mappable(march::march_a_plus_plus()));
  EXPECT_FALSE(mbist_pfsm::is_mappable(march::march_b()));
  EXPECT_FALSE(mbist_pfsm::is_mappable(march::march_ss()));  // 5-op elements
  EXPECT_FALSE(mbist_pfsm::is_mappable(march::march_g()));   // 6-op element
  EXPECT_THROW((void)mbist_pfsm::compile(march::march_b()),
               mbist_pfsm::CompileError);
}

TEST(PfsmCompiler, RejectsOversizedProgram) {
  PfsmController ctrl{{.geometry = {.address_bits = 3}, .buffer_depth = 4}};
  EXPECT_THROW(ctrl.load_algorithm(march::march_c()),
               mbist_pfsm::CompileError);
}

// --- equivalence -------------------------------------------------------------

struct EquivCase {
  const char* alg;
  MemoryGeometry geometry;
};

class PfsmEquivalence : public ::testing::TestWithParam<EquivCase> {};

TEST_P(PfsmEquivalence, StreamMatchesReferenceExpansion) {
  const auto& p = GetParam();
  const auto alg = march::by_name(p.alg);
  PfsmController ctrl{{.geometry = p.geometry}};
  ctrl.load_algorithm(alg);
  const auto actual = bist::collect_ops(ctrl, 100'000'000);
  const auto expected = march::expand(alg, p.geometry);
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i)
    ASSERT_EQ(actual[i], expected[i]) << "op " << i << " of " << p.alg;
}

constexpr MemoryGeometry kBit1P{.address_bits = 5, .word_bits = 1,
                                .num_ports = 1};
constexpr MemoryGeometry kWord1P{.address_bits = 4, .word_bits = 8,
                                 .num_ports = 1};
constexpr MemoryGeometry kWord2P{.address_bits = 3, .word_bits = 4,
                                 .num_ports = 2};

INSTANTIATE_TEST_SUITE_P(
    MappableAlgorithms, PfsmEquivalence,
    ::testing::Values(EquivCase{"MATS", kBit1P}, EquivCase{"MATS+", kBit1P},
                      EquivCase{"March X", kBit1P},
                      EquivCase{"March Y", kBit1P},
                      EquivCase{"March C", kBit1P},
                      EquivCase{"March C (orig)", kBit1P},
                      EquivCase{"March C+", kBit1P},
                      EquivCase{"March A", kBit1P},
                      EquivCase{"March A+", kBit1P},
                      EquivCase{"MATS++", kBit1P},
                      EquivCase{"March U", kBit1P},
                      EquivCase{"March LR", kBit1P},
                      EquivCase{"March U", kWord2P},
                      EquivCase{"March C", kWord1P},
                      EquivCase{"March C+", kWord1P},
                      EquivCase{"March A", kWord2P},
                      EquivCase{"March C+", kWord2P},
                      EquivCase{"MATS+", kWord2P}),
    [](const auto& info) {
      std::string name = info.param.alg;
      for (char& c : name)
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      return name + "_a" + std::to_string(info.param.geometry.address_bits) +
             "_w" + std::to_string(info.param.geometry.word_bits) + "_p" +
             std::to_string(info.param.geometry.num_ports);
    });

TEST(PfsmController, PassesOnFaultFreeMemoryAndIsRerunnable) {
  const MemoryGeometry g{.address_bits = 6, .word_bits = 4, .num_ports = 2};
  PfsmController ctrl{{.geometry = g}};
  ctrl.load_algorithm(march::march_a_plus());
  memsim::SramModel mem{g, 3};
  const auto first = bist::run_session(ctrl, mem);
  EXPECT_TRUE(first.passed());
  const auto second = bist::run_session(ctrl, mem);
  EXPECT_TRUE(second.passed());
  EXPECT_EQ(second.cycles, first.cycles);
}

// The two-level architecture pays Reset/Done overhead cycles per component
// per pass; the op count itself matches the expansion.
TEST(PfsmController, CycleOverheadIsPerComponent) {
  const MemoryGeometry g{.address_bits = 4};
  PfsmController ctrl{{.geometry = g}};
  ctrl.load_algorithm(march::march_c());
  const auto ops = march::expanded_op_count(march::march_c(), g);
  const auto cycles = bist::count_cycles(ctrl, 1'000'000);
  EXPECT_GT(cycles, ops);
  // 6 components x (Reset+Done) + 2 ctrl + Idle + slack.
  EXPECT_LE(cycles, ops + 6 * 2 + 2 + 2);
}

// --- area --------------------------------------------------------------------

TEST(PfsmArea, LowerFsmHasSevenStates) {
  const auto fsm = mbist_pfsm::lower_controller_fsm();
  EXPECT_EQ(fsm.num_states(), 7);
  EXPECT_TRUE(fsm.validate().empty());
}

TEST(PfsmArea, BufferDominatesAndScalesWithDepth) {
  const auto lib = netlist::TechLibrary::cmos5s();
  mbist_pfsm::AreaConfig c16{.geometry = {.address_bits = 10},
                             .buffer_depth = 16};
  mbist_pfsm::AreaConfig c8 = c16;
  c8.buffer_depth = 8;
  const auto r16 = mbist_pfsm::pfsm_area(c16);
  const auto r8 = mbist_pfsm::pfsm_area(c8);
  EXPECT_GT(r16.total_ge(lib), r8.total_ge(lib));

  double buffer_ge = 0;
  for (const auto& b : r16.blocks())
    if (b.name == "circular buffer") buffer_ge = b.inventory.total_ge(lib);
  EXPECT_GT(buffer_ge, 0.5 * r16.total_ge(lib))
      << "the full-rate buffer should dominate the pFSM unit";
}

TEST(PfsmArea, SynthesizedBlocksAreBounded) {
  const auto lib = netlist::TechLibrary::cmos5s();
  const double fsm_ge = mbist_pfsm::lower_fsm_inventory().total_ge(lib);
  EXPECT_GT(fsm_ge, 15.0);
  EXPECT_LT(fsm_ge, 400.0);
  const double dec_ge =
      mbist_pfsm::component_decoder_inventory().total_ge(lib);
  EXPECT_GT(dec_ge, 5.0);
  EXPECT_LT(dec_ge, 200.0);
}

}  // namespace
