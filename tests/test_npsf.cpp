// Neighborhood-pattern-sensitive fault tests: the fault model's forcing
// semantics, the march family's fundamental NPSF limitation, and the
// exhaustive pattern screen's guarantee.

#include <gtest/gtest.h>

#include "diag/npsf.h"
#include "march/library.h"

namespace {

using namespace pmbist;
using memsim::Address;
using memsim::AddressScrambler;
using memsim::ArrayTopology;
using memsim::BitRef;

constexpr memsim::MemoryGeometry kGeom{.address_bits = 4, .word_bits = 1,
                                       .num_ports = 1};

TEST(Npsf, ForcingSemantics) {
  memsim::FaultyMemory mem{kGeom, std::vector<memsim::Word>(16, 0)};
  memsim::NeighborhoodPatternFault f;
  f.base = BitRef{5, 0};
  f.neighbors = {BitRef{1, 0}, BitRef{9, 0}};
  f.pattern = 0b01;  // neighbor 1 must hold 1, neighbor 9 must hold 0
  f.forced_value = true;
  mem.add_fault(f);

  mem.write(0, 5, 0);
  EXPECT_EQ(mem.read(0, 5), 0u);  // pattern absent
  mem.write(0, 1, 1);             // pattern now present -> base forced 1
  EXPECT_EQ(mem.read(0, 5), 1u);
  mem.write(0, 5, 0);             // write overridden while pattern holds
  EXPECT_EQ(mem.read(0, 5), 1u);
  mem.write(0, 9, 1);             // pattern broken
  mem.write(0, 5, 0);
  EXPECT_EQ(mem.read(0, 5), 0u);
}

TEST(Npsf, RejectsMalformedFaults) {
  memsim::FaultyMemory mem{kGeom};
  memsim::NeighborhoodPatternFault f;
  f.base = BitRef{5, 0};
  EXPECT_THROW(mem.add_fault(f), std::invalid_argument);  // no neighbors
  f.neighbors = {BitRef{5, 0}};
  EXPECT_THROW(mem.add_fault(f), std::invalid_argument);  // base = neighbor
}

TEST(Npsf, UniverseRespectsTopology) {
  const ArrayTopology topo{4, 2, AddressScrambler::scrambled(4, 3)};
  const auto faults = memsim::npsf_faults(topo, 0, 3, 24);
  ASSERT_EQ(faults.size(), 24u);
  for (const auto& fault : faults) {
    const auto& f = std::get<memsim::NeighborhoodPatternFault>(fault);
    const auto nbrs = topo.neighbors(f.base.addr);
    ASSERT_EQ(f.neighbors.size(), nbrs.size());
    for (std::size_t i = 0; i < nbrs.size(); ++i)
      EXPECT_EQ(f.neighbors[i].addr, nbrs[i]);
    EXPECT_EQ(memsim::fault_class(fault), memsim::FaultClass::NPSF);
  }
}

// The headline pair: march tests only partially detect NPSFs; the
// exhaustive screen detects every one.
TEST(Npsf, MarchIsPartialScreenIsComplete) {
  const ArrayTopology topo{4, 2, AddressScrambler::identity(4)};
  const auto faults = memsim::npsf_faults(topo, 0, 7, 48);
  const auto march_stream = march::expand(march::march_ss(), kGeom);
  const auto screen = diag::npsf_screen(topo);

  int march_detected = 0;
  int screen_detected = 0;
  for (const auto& fault : faults) {
    {
      memsim::FaultyMemory mem{kGeom, 7};
      mem.add_fault(fault);
      if (!march::run_stream(march_stream, mem, 1).passed())
        ++march_detected;
    }
    {
      memsim::FaultyMemory mem{kGeom, 7};
      mem.add_fault(fault);
      if (!march::run_stream(screen, mem, 1).passed()) ++screen_detected;
    }
  }
  EXPECT_EQ(screen_detected, static_cast<int>(faults.size()));
  EXPECT_LT(march_detected, static_cast<int>(faults.size()));
  EXPECT_GT(march_detected, 0);  // uniform patterns are applied by marches
}

TEST(Npsf, ScreenPassesOnHealthyMemoryAndScalesAsExpected) {
  const ArrayTopology topo{4, 2, AddressScrambler::scrambled(4, 11)};
  memsim::SramModel mem{kGeom, 5};
  const auto r = diag::run_npsf_screen(topo, mem);
  EXPECT_TRUE(r.passed());
  // Cost: dominated by 2^4 patterns x (4 writes + 4 base ops) per cell.
  const auto ops = diag::npsf_screen(topo).size();
  EXPECT_GT(ops, 16u * 16u * 8u / 2);
  EXPECT_LT(ops, 16u * 16u * 8u * 2);
}

TEST(Npsf, ScreenCatchesStuckAtsToo) {
  const ArrayTopology topo{4, 2, AddressScrambler::identity(4)};
  memsim::FaultyMemory mem{kGeom, 5};
  mem.add_fault(memsim::StuckAtFault{{6, 0}, true});
  EXPECT_FALSE(diag::run_npsf_screen(topo, mem).passed());
}

}  // namespace
