// The serve subsystem (src/serve): wire protocol hardening, the
// serve/CLI byte-equivalence contract, cross-request caching,
// cancellation, server isolation and the TCP transport.
//
// The equivalence tests recompute each result through the same shared
// formatter the CLI uses (march::format_coverage_table,
// soc::format_soc_report, field::format_field_report, lint::format_cli)
// and require the serve payload to match byte for byte — the contract
// docs/SERVE.md promises and tools/run_serve_equiv_test.cmake re-checks
// end-to-end through the built binary.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <filesystem>
#include <fstream>
#include <future>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "backend/memtest.h"
#include "common/json.h"
#include "field/manager.h"
#include "field/profile.h"
#include "lint/diagnostics.h"
#include "lint/driver.h"
#include "march/coverage.h"
#include "march/library.h"
#include "memsim/fault_model.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "soc/chip.h"
#include "soc/schedule_io.h"
#include "soc/scheduler.h"

namespace {

using namespace pmbist;
namespace json = common::json;

std::string read_file(const std::string& relative) {
  const std::string path = std::string(PMBIST_SOURCE_DIR) + "/" + relative;
  std::ifstream in{path, std::ios::binary};
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Field accessor over an emitted event line; fails the test on
/// malformed events (the server must only ever emit valid JSON).
std::string event_field(const std::string& line, const std::string& key) {
  const json::Value doc = json::Value::parse(line);
  const json::Value* value = doc.find(key);
  if (value == nullptr) return {};
  if (value->is_string()) return value->as_string();
  return value->number_text();
}

/// A sink that collects events under a lock and can block until a
/// terminal event (result/error/cancelled) arrives for a given id.
struct Collector {
  std::mutex mu;
  std::condition_variable cv;
  std::vector<std::string> events;

  serve::Server::Sink sink() {
    return [this](const std::string& line) {
      std::lock_guard lock{mu};
      events.push_back(line);
      cv.notify_all();
    };
  }

  std::vector<std::string> snapshot() {
    std::lock_guard lock{mu};
    return events;
  }

  bool wait_for_terminal(const std::string& id, std::chrono::seconds budget) {
    auto terminal = [&] {
      for (const std::string& line : events) {
        const std::string event = event_field(line, "event");
        if (event_field(line, "id") != id) continue;
        if (event == "result" || event == "error" || event == "cancelled")
          return true;
      }
      return false;
    };
    std::unique_lock lock{mu};
    return cv.wait_for(lock, budget, terminal);
  }

  bool wait_for_event(const std::string& id, const std::string& kind,
                      std::chrono::seconds budget) {
    auto seen = [&] {
      for (const std::string& line : events)
        if (event_field(line, "id") == id && event_field(line, "event") == kind)
          return true;
      return false;
    };
    std::unique_lock lock{mu};
    return cv.wait_for(lock, budget, seen);
  }
};

// ---------------------------------------------------------------------------
// Protocol parsing: the hardened edge.

TEST(ServeProtocol, CampaignDefaultsMirrorTheCli) {
  const auto req = serve::parse_request(
      R"({"id":"c","kind":"campaign","algorithm":"MATS"})");
  EXPECT_EQ(req.id, "c");
  EXPECT_EQ(req.kind, serve::RequestKind::Campaign);
  EXPECT_EQ(req.algorithm, "MATS");
  EXPECT_EQ(req.geometry.address_bits, 8);
  EXPECT_EQ(req.geometry.word_bits, 1);
  EXPECT_EQ(req.geometry.num_ports, 1);
  EXPECT_EQ(req.samples, 64);
  EXPECT_EQ(req.seed, 1u);
  EXPECT_EQ(req.kernel, march::CampaignKernel::Auto);
  EXPECT_EQ(req.jobs, 0);
  EXPECT_TRUE(req.fault_classes.empty());
}

TEST(ServeProtocol, LintDefaultsMirrorTheCli) {
  const auto req =
      serve::parse_request(R"({"id":"l","kind":"lint","input":"March C"})");
  EXPECT_EQ(req.kind, serve::RequestKind::Lint);
  EXPECT_EQ(req.unit, "input");
  EXPECT_FALSE(req.lint_json);
  EXPECT_EQ(req.storage_depth, 32);
  EXPECT_EQ(req.buffer_depth, 16);
}

TEST(ServeProtocol, MemtestDefaultsMirrorTheCli) {
  const auto req =
      serve::parse_request(R"({"id":"m","kind":"memtest"})");
  EXPECT_EQ(req.kind, serve::RequestKind::Memtest);
  EXPECT_EQ(req.algorithm, "March C");
  EXPECT_EQ(req.size_mb, 256u);
  EXPECT_EQ(req.passes, 1);
  EXPECT_EQ(req.backgrounds, 0);
  EXPECT_EQ(req.backend, backend::BackendKind::HostRam);
  EXPECT_EQ(req.jobs, 0);

  const auto full = serve::parse_request(
      R"({"id":"m","kind":"memtest","algorithm":"MATS+","size_mb":64,)"
      R"("passes":2,"backgrounds":3,"jobs":4,"backend":"sim",)"
      R"("max_failures":8})");
  EXPECT_EQ(full.algorithm, "MATS+");
  EXPECT_EQ(full.size_mb, 64u);
  EXPECT_EQ(full.passes, 2);
  EXPECT_EQ(full.backgrounds, 3);
  EXPECT_EQ(full.jobs, 4);
  EXPECT_EQ(full.backend, backend::BackendKind::Sim);
  EXPECT_EQ(full.max_failures, 8u);
  EXPECT_EQ(serve::to_string(full.kind), std::string{"memtest"});
}

TEST(ServeProtocol, RejectsMalformedRequests) {
  const char* bad[] = {
      "",                                             // empty
      "not json",                                     // not JSON at all
      "[1,2,3]",                                      // not an object
      R"({"kind":"stats"})",                          // missing id
      R"({"id":"x"})",                                // missing kind
      R"({"id":"x","kind":"frobnicate"})",            // unknown kind
      R"({"id":"x","kind":"stats","extra":1})",       // unknown field
      R"({"id":"x","kind":"campaign"})",              // missing algorithm
      R"({"id":"x","kind":"campaign","algorithm":5})",       // wrong type
      R"({"id":"x","kind":"campaign","algorithm":"MATS","addr_bits":0})",
      R"({"id":"x","kind":"campaign","algorithm":"MATS","addr_bits":21})",
      R"({"id":"x","kind":"campaign","algorithm":"MATS","kernel":"warp"})",
      R"({"id":"x","kind":"campaign","algorithm":"MATS","classes":"SAF"})",
      R"({"id":"x","kind":"lint"})",                  // missing input
      R"({"id":"x","kind":"cancel"})",                // missing target
      R"({"id":"x","kind":"soc","chip":"a","bogus":true})",
      R"({"id":1,"kind":"stats"})",                   // id must be a string
      R"({"id":"x","kind":"memtest","sizemb":4})",    // unknown field
      R"({"id":"x","kind":"memtest","huge_pages":true})",  // CLI-only flag
      R"({"id":"x","kind":"memtest","size_mb":0})",   // empty buffer
      R"({"id":"x","kind":"memtest","size_mb":32768})",  // over the 16G cap
      R"({"id":"x","kind":"memtest","passes":0})",
      R"({"id":"x","kind":"memtest","backgrounds":8})",
      R"({"id":"x","kind":"memtest","backend":"dram"})",  // unknown backend
  };
  for (const char* line : bad)
    EXPECT_THROW((void)serve::parse_request(line), serve::ProtocolError)
        << "accepted: " << line;
}

// Hostile-input fuzz: every truncation of a valid request, plus byte
// mutations, must either parse or throw ProtocolError — never crash,
// and never leak any other exception type.
TEST(ServeProtocol, FuzzTruncationsAndMutationsNeverCrash) {
  const std::string seed =
      R"({"id":"c1","kind":"campaign","algorithm":"MATS","addr_bits":4,)"
      R"("samples":8,"seed":7,"kernel":"packed","classes":["SAF","TF"]})";
  std::vector<std::string> cases;
  for (std::size_t len = 0; len <= seed.size(); ++len)
    cases.push_back(seed.substr(0, len));
  // Deterministic single-byte mutations (no RNG: position-derived bytes).
  for (std::size_t pos = 0; pos < seed.size(); pos += 3) {
    std::string mutated = seed;
    mutated[pos] = static_cast<char>('!' + (pos * 31) % 90);
    cases.push_back(std::move(mutated));
  }
  cases.push_back(std::string(1 << 12, '['));   // deep nesting
  cases.push_back(std::string("\"") + std::string(64, '\\'));

  for (const std::string& line : cases) {
    try {
      (void)serve::parse_request(line);
    } catch (const serve::ProtocolError&) {
      // expected for the malformed majority
    }
  }
}

TEST(ServeProtocol, EventsEscapeHostilePayloads) {
  const std::string hostile = "quote\" backslash\\ newline\n tab\t";
  const std::string line = serve::event_result("id\"x", 1, hostile);
  const json::Value doc = json::Value::parse(line);  // must round-trip
  EXPECT_EQ(doc.find("payload")->as_string(), hostile);
  EXPECT_EQ(doc.find("id")->as_string(), "id\"x");
  EXPECT_EQ(doc.find("exit")->as_i64(), 1);
  EXPECT_EQ(line.find('\n'), std::string::npos);  // one event = one line
}

// Malformed lines through a live server become error events, never
// exceptions; the server keeps serving afterwards.
TEST(ServeProtocol, ServerTurnsMalformedLinesIntoErrorEvents) {
  serve::Server server{{.sessions = 1}};
  for (const char* line :
       {"not json", R"({"id":"x","kind":"frobnicate"})", "{", ""}) {
    const auto events = server.call(line);
    ASSERT_EQ(events.size(), 1u) << line;
    EXPECT_EQ(event_field(events[0], "event"), "error");
  }
  // Still healthy: a well-formed request completes normally.
  const auto ok = server.call(R"({"id":"s","kind":"stats"})");
  ASSERT_EQ(ok.size(), 1u);
  EXPECT_EQ(event_field(ok[0], "event"), "result");
}

// ---------------------------------------------------------------------------
// Serve/CLI equivalence: payloads are byte-identical to the shared
// formatters the CLI prints.

TEST(ServeEquivalence, CampaignPayloadMatchesEngineOutput) {
  serve::Server server{{.sessions = 1}};
  const auto events = server.call(
      R"({"id":"c1","kind":"campaign","algorithm":"MATS","addr_bits":4,)"
      R"("samples":4,"jobs":1})");

  const auto& classes = memsim::all_fault_classes();
  ASSERT_EQ(events.size(), classes.size() + 2);  // accepted + progress + result
  EXPECT_EQ(event_field(events.front(), "event"), "accepted");
  for (std::size_t i = 0; i < classes.size(); ++i) {
    EXPECT_EQ(event_field(events[i + 1], "event"), "progress");
    EXPECT_EQ(event_field(events[i + 1], "done"), std::to_string(i + 1));
    EXPECT_EQ(event_field(events[i + 1], "total"),
              std::to_string(classes.size()));
  }
  EXPECT_EQ(event_field(events.back(), "event"), "result");
  EXPECT_EQ(event_field(events.back(), "exit"), "0");

  // Recompute through the same engine + formatter the CLI uses.
  march::StreamCache cache;
  const memsim::MemoryGeometry geom{.address_bits = 4, .word_bits = 1,
                                    .num_ports = 1};
  march::CoverageRow row;
  row.algorithm = "MATS";
  const march::CoverageOptions opts{.seed = 1, .max_instances_per_class = 4,
                                    .jobs = 1, .cache = &cache};
  const auto alg = march::by_name("MATS");
  std::vector<memsim::FaultClass> all{classes.begin(), classes.end()};
  for (auto cls : all)
    row.cells[cls] = march::evaluate_coverage(alg, cls, geom, opts);
  const std::vector<march::CoverageRow> rows{row};
  EXPECT_EQ(event_field(events.back(), "payload"),
            march::format_coverage_table(rows, all));
}

TEST(ServeEquivalence, LintPayloadMatchesFormatCli) {
  serve::Server server{{.sessions = 1}};
  const auto events =
      server.call(R"({"id":"l1","kind":"lint","input":"March C"})");
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(event_field(events[0], "event"), "accepted");
  EXPECT_EQ(event_field(events[1], "event"), "result");

  const lint::Report report = lint::lint_text("March C", "input", {});
  EXPECT_EQ(event_field(events[1], "payload"),
            lint::format_cli(report, "input", false));
  EXPECT_EQ(event_field(events[1], "exit"), report.has_errors() ? "1" : "0");
}

TEST(ServeEquivalence, MemtestPayloadMatchesEngineOutput) {
  serve::Server server{{.sessions = 1}};
  const auto events = server.call(
      R"({"id":"m1","kind":"memtest","algorithm":"MATS+","size_mb":1,)"
      R"("backgrounds":1,"jobs":1,"backend":"sim"})");
  ASSERT_GE(events.size(), 2u);
  EXPECT_EQ(event_field(events.front(), "event"), "accepted");
  EXPECT_EQ(event_field(events.back(), "event"), "result");

  backend::MemtestOptions opts;
  opts.size_bytes = 1ull << 20;
  opts.backgrounds = 1;
  opts.jobs = 1;
  opts.backend = backend::BackendKind::Sim;
  const auto report = backend::run_memtest(march::by_name("MATS+"), opts);
  EXPECT_EQ(event_field(events.back(), "payload"),
            backend::format_memtest_report(report));
  EXPECT_EQ(event_field(events.back(), "exit"), report.passed() ? "0" : "1");
}

TEST(ServeEquivalence, SocPayloadMatchesFormatSocReport) {
  const std::string chip_text = read_file("examples/soc_demo.chip");
  json::Value req = json::Value::object();
  req.set("id", json::Value::string("s1"));
  req.set("kind", json::Value::string("soc"));
  req.set("chip", json::Value::string(chip_text));
  req.set("jobs", json::Value::number(std::int64_t{1}));

  serve::Server server{{.sessions = 1}};
  const auto events = server.call(req.dump());
  ASSERT_GE(events.size(), 2u);
  EXPECT_EQ(event_field(events.front(), "event"), "accepted");
  EXPECT_EQ(event_field(events.back(), "event"), "result");

  const soc::ChipFile chip = soc::parse_chip(chip_text);
  soc::SchedulerOptions opts;
  opts.jobs = 1;
  const auto result = soc::run_soc(chip.description, chip.plan, opts);
  EXPECT_EQ(event_field(events.back(), "payload"),
            soc::format_soc_report(chip.description, chip.plan, result));
  EXPECT_EQ(event_field(events.back(), "exit"),
            result.all_healthy() ? "0" : "1");
}

TEST(ServeEquivalence, FieldPayloadMatchesFormatFieldReport) {
  const std::string chip_text = read_file("examples/soc_demo.chip");
  const std::string profile_text = read_file("examples/soc_demo.profile");
  json::Value req = json::Value::object();
  req.set("id", json::Value::string("f1"));
  req.set("kind", json::Value::string("field"));
  req.set("chip", json::Value::string(chip_text));
  req.set("profile", json::Value::string(profile_text));
  req.set("jobs", json::Value::number(std::int64_t{1}));

  serve::Server server{{.sessions = 1}};
  const auto events = server.call(req.dump());
  ASSERT_GE(events.size(), 2u);
  EXPECT_EQ(event_field(events.back(), "event"), "result");

  const soc::ChipFile chip = soc::parse_chip(chip_text);
  const auto profile = field::parse_profile_text(profile_text);
  field::FieldOptions opts;
  opts.jobs = 1;
  const auto report =
      field::run_field(chip.description, chip.plan, profile, opts);
  EXPECT_EQ(event_field(events.back(), "payload"),
            field::format_field_report(report));
  EXPECT_EQ(event_field(events.back(), "exit"),
            report.all_healthy() ? "0" : "1");
}

// Determinism across transports and runs: the pipe transport produces a
// byte-identical event stream for the same batch, twice in a row on
// fresh servers.
TEST(ServeEquivalence, PipeBatchIsByteStable) {
  const std::string batch =
      R"({"id":"a","kind":"lint","input":"March C"})" "\n"
      R"({"id":"b","kind":"campaign","algorithm":"MATS","addr_bits":4,)"
      R"("samples":4,"jobs":1})" "\n"
      "not json\n";
  auto run = [&] {
    serve::Server server{{.sessions = 1}};
    std::istringstream in{batch};
    std::ostringstream out;
    server.run_pipe(in, out);
    return out.str();
  };
  const std::string first = run();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, run());
}

TEST(ServeEquivalence, PipeMirrorsPayloadsToFiles) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "pmbist_serve_payload_test";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  serve::Server server{{.sessions = 1}};
  std::istringstream in{R"({"id":"l1","kind":"lint","input":"March C"})" "\n"};
  std::ostringstream out;
  server.run_pipe(in, out, dir.string());

  std::ifstream mirrored{dir / "l1.out", std::ios::binary};
  ASSERT_TRUE(mirrored.good());
  std::ostringstream payload;
  payload << mirrored.rdbuf();
  const lint::Report report = lint::lint_text("March C", "input", {});
  EXPECT_EQ(payload.str(), lint::format_cli(report, "input", false));
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Caching: cross-request hits, deterministic LRU eviction.

TEST(ServeCaches, LintVerdictsAreServedFromCacheOnRepeat) {
  serve::Server server{{.sessions = 1}};
  const std::string line = R"({"id":"l1","kind":"lint","input":"March C"})";
  const auto first = server.call(line);
  const auto second =
      server.call(R"({"id":"l2","kind":"lint","input":"March C"})");
  EXPECT_EQ(event_field(first.back(), "payload"),
            event_field(second.back(), "payload"));

  const auto stats = server.stats();
  EXPECT_EQ(stats.lints.misses, 1u);
  EXPECT_EQ(stats.lints.hits, 1u);
  EXPECT_EQ(stats.lints.entries, 1u);
}

TEST(ServeCaches, LintEvictionIsDeterministicUnderEntryBudget) {
  serve::Server server{{.sessions = 1, .lint_cache_entries = 1}};
  auto lint = [&](const char* id, const char* input) {
    return server.call(std::string(R"({"id":")") + id +
                       R"(","kind":"lint","input":")" + input + R"("})");
  };
  const auto a1 = lint("a1", "March C");
  (void)lint("b1", "MATS+");     // evicts the March C verdict
  const auto a2 = lint("a2", "March C");  // recomputed, identical bytes

  EXPECT_EQ(event_field(a1.back(), "payload"),
            event_field(a2.back(), "payload"));
  const auto stats = server.stats();
  EXPECT_EQ(stats.lints.hits, 0u);
  EXPECT_EQ(stats.lints.misses, 3u);
  EXPECT_EQ(stats.lints.evictions, 2u);
  EXPECT_EQ(stats.lints.entries, 1u);
}

// ---------------------------------------------------------------------------
// Lint requests with cross-file context (against / chip / profile /
// certify) and the schedule-certificate gate on soc/field sessions.

TEST(ServeProtocol, LintAcceptsCertifyAndProfileFields) {
  const auto req = serve::parse_request(
      R"({"id":"l","kind":"lint","input":"x","chip":"c","profile":"p",)"
      R"("certify":true})");
  EXPECT_TRUE(req.certify);
  EXPECT_EQ(req.chip, "c");
  EXPECT_EQ(req.profile, "p");
  const auto off =
      serve::parse_request(R"({"id":"l","kind":"lint","input":"x"})");
  EXPECT_FALSE(off.certify);
  EXPECT_TRUE(off.profile.empty());
  EXPECT_THROW(
      (void)serve::parse_request(
          R"({"id":"l","kind":"lint","input":"x","certify":"yes"})"),
      serve::ProtocolError);
}

TEST(ServeEquivalence, LintAgainstPayloadMatchesFormatCli) {
  const std::string image = read_file("examples/march_c.ucode.hex");
  json::Value req = json::Value::object();
  req.set("id", json::Value::string("la"));
  req.set("kind", json::Value::string("lint"));
  req.set("input", json::Value::string(image));
  req.set("against", json::Value::string("March C"));

  serve::Server server{{.sessions = 1}};
  const auto events = server.call(req.dump());
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(event_field(events[1], "event"), "result");

  lint::LintOptions lopts;
  lopts.against = "March C";
  const lint::Report report = lint::lint_text(image, "input", lopts);
  EXPECT_TRUE(report.has_code("EQ04")) << lint::format_text(report);
  EXPECT_EQ(event_field(events[1], "payload"),
            lint::format_cli(report, "input", false));
  EXPECT_EQ(event_field(events[1], "exit"), "0");
}

TEST(ServeEquivalence, LintCertifiesScheduleAgainstChipPayload) {
  const std::string chip_text = read_file("examples/soc_demo.chip");
  const soc::ChipFile chip = soc::parse_chip(chip_text);
  const std::string schedule_text = soc::to_schedule_text(
      "s", soc::Scheduler{}.compute_schedule(chip.description, chip.plan));

  json::Value req = json::Value::object();
  req.set("id", json::Value::string("lc"));
  req.set("kind", json::Value::string("lint"));
  req.set("input", json::Value::string(schedule_text));
  req.set("chip", json::Value::string(chip_text));
  req.set("certify", json::Value::boolean(true));

  serve::Server server{{.sessions = 1}};
  const auto events = server.call(req.dump());
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(event_field(events[1], "event"), "result");
  EXPECT_EQ(event_field(events[1], "exit"), "0");

  lint::LintOptions lopts;
  lopts.chip = chip_text;
  lopts.certify = true;
  const lint::Report report =
      lint::lint_text(schedule_text, "input", lopts);
  EXPECT_TRUE(report.empty()) << lint::format_text(report);
  EXPECT_EQ(event_field(events[1], "payload"),
            lint::format_cli(report, "input", false));
}

TEST(ServeCaches, CertifyOptionShapesShareOneVerdictEntry) {
  // An omitted `certify` and an explicit `certify:false` (plus an empty
  // `profile`) are the same request; only `certify:true` is a new key.
  serve::Server server{{.sessions = 1}};
  (void)server.call(R"({"id":"a","kind":"lint","input":"March C"})");
  (void)server.call(
      R"({"id":"b","kind":"lint","input":"March C","certify":false,)"
      R"("profile":""})");
  auto stats = server.stats();
  EXPECT_EQ(stats.lints.misses, 1u);
  EXPECT_EQ(stats.lints.hits, 1u);
  (void)server.call(
      R"({"id":"c","kind":"lint","input":"March C","certify":true})");
  stats = server.stats();
  EXPECT_EQ(stats.lints.misses, 2u);
  EXPECT_EQ(stats.lints.hits, 1u);
}

TEST(ServeCertify, CertifyingServerKeepsResultPayloadsUnchanged) {
  // ServerOptions::certify re-verifies every soc/field schedule before
  // replying; when the certificate holds (always, for the real engines)
  // the result payload is byte-identical to an uncertified server's.
  const std::string chip_text = read_file("examples/soc_demo.chip");
  const std::string profile_text = read_file("examples/soc_demo.profile");
  json::Value soc_req = json::Value::object();
  soc_req.set("id", json::Value::string("s"));
  soc_req.set("kind", json::Value::string("soc"));
  soc_req.set("chip", json::Value::string(chip_text));
  soc_req.set("jobs", json::Value::number(std::int64_t{1}));
  json::Value field_req = json::Value::object();
  field_req.set("id", json::Value::string("f"));
  field_req.set("kind", json::Value::string("field"));
  field_req.set("chip", json::Value::string(chip_text));
  field_req.set("profile", json::Value::string(profile_text));
  field_req.set("jobs", json::Value::number(std::int64_t{1}));

  serve::Server plain{{.sessions = 1}};
  serve::Server certifying{{.sessions = 1, .certify = true}};
  for (const auto* req : {&soc_req, &field_req}) {
    const auto a = plain.call(req->dump());
    const auto b = certifying.call(req->dump());
    ASSERT_GE(b.size(), 2u);
    EXPECT_EQ(event_field(b.back(), "event"), "result");
    EXPECT_EQ(event_field(a.back(), "payload"),
              event_field(b.back(), "payload"));
    EXPECT_EQ(event_field(a.back(), "exit"), event_field(b.back(), "exit"));
  }
}

TEST(ServeCaches, StreamCacheHitsAccumulateAcrossRequests) {
  serve::Server server{{.sessions = 1}};
  const std::string line =
      R"({"id":"c1","kind":"campaign","algorithm":"MATS","addr_bits":4,)"
      R"("samples":4,"jobs":1})";
  (void)server.call(line);
  const auto after_first = server.stats().streams;
  // One expansion per (algorithm, geometry); every later class hits.
  EXPECT_EQ(after_first.misses, 1u);
  EXPECT_GT(after_first.hits, 0u);

  (void)server.call(
      R"({"id":"c2","kind":"campaign","algorithm":"MATS","addr_bits":4,)"
      R"("samples":4,"jobs":1})");
  const auto after_second = server.stats().streams;
  EXPECT_EQ(after_second.misses, 1u);  // second request is all hits
  EXPECT_GT(after_second.hits, after_first.hits);
}

// ---------------------------------------------------------------------------
// Isolation: two servers in one process share nothing — the pin for the
// no-global-state refactor of the engine layers.

TEST(ServeIsolation, TwoServersInOneProcessShareNothing) {
  serve::Server left{{.sessions = 1}};
  serve::Server right{{.sessions = 2}};
  const std::string campaign =
      R"({"id":"c","kind":"campaign","algorithm":"MATS","addr_bits":4,)"
      R"("samples":4,"jobs":1})";
  const std::string lint_line = R"({"id":"l","kind":"lint","input":"March C"})";

  const auto left_events = left.call(campaign);
  (void)left.call(lint_line);
  const auto right_events = right.call(campaign);
  (void)right.call(lint_line);

  // Identical results...
  EXPECT_EQ(event_field(left_events.back(), "payload"),
            event_field(right_events.back(), "payload"));
  // ...from fully independent caches: each server paid its own misses.
  const auto ls = left.stats();
  const auto rs = right.stats();
  EXPECT_EQ(ls.streams.misses, 1u);
  EXPECT_EQ(rs.streams.misses, 1u);
  EXPECT_EQ(ls.lints.misses, 1u);
  EXPECT_EQ(rs.lints.misses, 1u);
  EXPECT_EQ(ls.completed, 2u);
  EXPECT_EQ(rs.completed, 2u);
}

// ---------------------------------------------------------------------------
// Cancellation and session registry.

TEST(ServeSessions, CancelMidCampaignLeavesTheServerReusable) {
  serve::Server server{{.sessions = 1}};
  Collector events;

  // Big enough that 12 per-class boundaries remain after the first
  // progress event — the cancel flag is polled at every one of them.
  const std::string big =
      R"({"id":"big","kind":"campaign","algorithm":"March G","addr_bits":12,)"
      R"("samples":256,"jobs":2})";
  ASSERT_TRUE(server.post(big, events.sink()));
  ASSERT_TRUE(events.wait_for_event("big", "progress",
                                    std::chrono::seconds(120)));

  // A duplicate id is rejected while the session is active.
  Collector dup;
  EXPECT_FALSE(server.post(big, dup.sink()));
  ASSERT_EQ(dup.snapshot().size(), 1u);
  EXPECT_EQ(event_field(dup.snapshot()[0], "event"), "error");

  const auto cancel_events =
      server.call(R"({"id":"k","kind":"cancel","target":"big"})");
  ASSERT_EQ(cancel_events.size(), 1u);
  EXPECT_EQ(event_field(cancel_events[0], "event"), "result");

  ASSERT_TRUE(events.wait_for_terminal("big", std::chrono::seconds(120)));
  const auto all = events.snapshot();
  EXPECT_EQ(event_field(all.back(), "event"), "cancelled");
  EXPECT_EQ(event_field(all.back(), "id"), "big");

  // The worker pool and the registry survived: a fresh request on the
  // same server completes normally with the exact engine output.
  const auto after = server.call(
      R"({"id":"c1","kind":"campaign","algorithm":"MATS","addr_bits":4,)"
      R"("samples":4,"jobs":1})");
  EXPECT_EQ(event_field(after.back(), "event"), "result");
  EXPECT_EQ(event_field(after.back(), "exit"), "0");
  EXPECT_EQ(server.stats().active, 0);
}

TEST(ServeSessions, CancelUnknownTargetIsAnError) {
  serve::Server server{{.sessions = 1}};
  const auto events =
      server.call(R"({"id":"k","kind":"cancel","target":"ghost"})");
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(event_field(events[0], "event"), "error");
}

TEST(ServeSessions, StatsPayloadIsWellFormed) {
  serve::Server server{{.sessions = 1}};
  (void)server.call(R"({"id":"l","kind":"lint","input":"March C"})");
  const auto events = server.call(R"({"id":"s","kind":"stats"})");
  ASSERT_EQ(events.size(), 1u);
  const json::Value doc =
      json::Value::parse(event_field(events[0], "payload"));
  ASSERT_NE(doc.find("streams"), nullptr);
  ASSERT_NE(doc.find("lints"), nullptr);
  EXPECT_EQ(doc.find("lints")->find("misses")->as_u64(), 1u);
  EXPECT_EQ(doc.find("active")->as_i64(), 0);
  EXPECT_EQ(doc.find("completed")->as_u64(), 1u);
}

TEST(ServeSessions, EngineFailuresBecomeErrorEvents) {
  serve::Server server{{.sessions = 1}};
  // Well-formed request, broken payloads: unknown algorithm DSL, bad chip.
  const auto bad_alg = server.call(
      R"({"id":"e1","kind":"campaign","algorithm":"March Zeta"})");
  EXPECT_EQ(event_field(bad_alg.back(), "event"), "error");
  const auto bad_chip =
      server.call(R"({"id":"e2","kind":"soc","chip":"mem bogus"})");
  EXPECT_EQ(event_field(bad_chip.back(), "event"), "error");
  const auto bad_class = server.call(
      R"({"id":"e3","kind":"campaign","algorithm":"MATS","classes":["XYZ"]})");
  EXPECT_EQ(event_field(bad_class.back(), "event"), "error");
  // The server remains usable after engine failures.
  const auto ok = server.call(R"({"id":"s","kind":"stats"})");
  EXPECT_EQ(event_field(ok.back(), "event"), "result");
}

// Mixed-kind concurrent clients through the async path: every session
// reaches a terminal event and payloads equal their sequential
// counterparts (the TSan job runs this test to pin thread safety).
TEST(ServeSessions, ConcurrentMixedKindsMatchSequentialResults) {
  const std::string campaign =
      R"({"id":"ID","kind":"campaign","algorithm":"MATS","addr_bits":4,)"
      R"("samples":4,"jobs":1})";
  const std::string lint_line = R"({"id":"ID","kind":"lint","input":"MATS+"})";

  serve::Server reference{{.sessions = 1}};
  auto expect_campaign = reference.call(campaign);
  auto expect_lint = reference.call(lint_line);
  const std::string campaign_payload =
      event_field(expect_campaign.back(), "payload");
  const std::string lint_payload = event_field(expect_lint.back(), "payload");

  serve::Server server{{.sessions = 4}};
  std::vector<std::thread> clients;
  std::mutex results_mu;
  std::vector<std::pair<bool, std::string>> results;  // (is_campaign, payload)
  for (int i = 0; i < 8; ++i) {
    clients.emplace_back([&, i] {
      const bool is_campaign = i % 2 == 0;
      std::string line = is_campaign ? campaign : lint_line;
      line.replace(line.find("ID"), 2, "client" + std::to_string(i));
      const auto events = server.call(line);
      std::lock_guard lock{results_mu};
      results.emplace_back(is_campaign, event_field(events.back(), "payload"));
    });
  }
  for (auto& t : clients) t.join();

  ASSERT_EQ(results.size(), 8u);
  for (const auto& [is_campaign, payload] : results)
    EXPECT_EQ(payload, is_campaign ? campaign_payload : lint_payload);
  EXPECT_EQ(server.stats().completed, 8u);
  EXPECT_EQ(server.stats().active, 0);
}

// ---------------------------------------------------------------------------
// TCP transport smoke: ephemeral loopback port, one client, clean
// shutdown with events delivered before the connection closes.

TEST(ServeTcp, LoopbackRoundTrip) {
  serve::Server server{{.sessions = 2}};
  std::promise<int> port_promise;
  auto port_future = port_promise.get_future();
  std::thread serving{[&] {
    std::string error;
    const int rc = server.serve_tcp(
        0, [&](int port) { port_promise.set_value(port); }, &error);
    EXPECT_EQ(rc, 0) << error;
  }};
  const int port = port_future.get();
  ASSERT_GT(port, 0);

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof addr),
            0);

  const std::string batch =
      R"({"id":"l1","kind":"lint","input":"March C"})" "\n"
      R"({"id":"s1","kind":"stats"})" "\n";
  ASSERT_EQ(::send(fd, batch.data(), batch.size(), 0),
            static_cast<ssize_t>(batch.size()));
  // Half-close the write side; the server drains in-flight sessions and
  // delivers every event before closing.
  ::shutdown(fd, SHUT_WR);

  std::string received;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof buf, 0)) > 0)
    received.append(buf, static_cast<std::size_t>(n));
  ::close(fd);

  std::vector<std::string> lines;
  std::istringstream in{received};
  for (std::string line; std::getline(in, line);) lines.push_back(line);

  bool lint_result = false;
  bool stats_result = false;
  for (const std::string& line : lines) {
    if (event_field(line, "event") != "result") continue;
    if (event_field(line, "id") == "l1") {
      const lint::Report report = lint::lint_text("March C", "input", {});
      EXPECT_EQ(event_field(line, "payload"),
                lint::format_cli(report, "input", false));
      lint_result = true;
    }
    if (event_field(line, "id") == "s1") stats_result = true;
  }
  EXPECT_TRUE(lint_result) << received;
  EXPECT_TRUE(stats_result) << received;

  server.shutdown();
  serving.join();
}

}  // namespace
