// Fault-coverage campaign tests — the semantic claims behind the paper's
// algorithm family: March C detects the classic static fault classes, the
// "+" retention variants add DRF detection, the "++" triple-read variants
// add weak-cell (DRDF) detection.  These are the properties that make the
// programmable controllers *worth* programming.

#include <gtest/gtest.h>

#include "march/coverage.h"
#include "march/library.h"

namespace {

using namespace pmbist;
using march::CoverageOptions;
using march::evaluate_coverage;
using memsim::FaultClass;
using memsim::MemoryGeometry;

constexpr MemoryGeometry kGeom{.address_bits = 5, .word_bits = 1,
                               .num_ports = 1};
const CoverageOptions kOpts{.seed = 42, .max_instances_per_class = 64};

double ratio(const march::MarchAlgorithm& alg, FaultClass cls) {
  return evaluate_coverage(alg, cls, kGeom, kOpts).ratio();
}

TEST(FaultUniverse, ExhaustiveWhereSmall) {
  const auto safs =
      march::make_fault_universe(FaultClass::SAF, kGeom, 1, 64);
  EXPECT_EQ(safs.size(), 64u);  // 32 cells x 2 values, enumerated
  const auto sofs =
      march::make_fault_universe(FaultClass::SOF, kGeom, 1, 64);
  EXPECT_EQ(sofs.size(), 32u);
  const auto cfs =
      march::make_fault_universe(FaultClass::CFin, kGeom, 1, 48);
  EXPECT_EQ(cfs.size(), 48u);  // sampled
  // Deterministic under the same seed.
  EXPECT_EQ(march::make_fault_universe(FaultClass::CFid, kGeom, 9, 16),
            march::make_fault_universe(FaultClass::CFid, kGeom, 9, 16));
}

TEST(FaultUniverse, AfInstancesCoverAllFourTypes) {
  const auto afs = march::make_fault_universe(FaultClass::AF, kGeom, 3, 16);
  int empty = 0, wrong = 0, multi = 0;
  for (const auto& f : afs) {
    const auto& af = std::get<memsim::AddressDecoderFault>(f);
    if (af.physical.empty())
      ++empty;
    else if (af.physical.size() == 1)
      ++wrong;
    else
      ++multi;
  }
  EXPECT_GT(empty, 0);
  EXPECT_GT(wrong, 0);
  EXPECT_GT(multi, 0);
}

// --- the headline coverage matrix -------------------------------------------

TEST(Coverage, MarchCDetectsAllStaticClasses) {
  const auto c = march::march_c();
  EXPECT_DOUBLE_EQ(ratio(c, FaultClass::SAF), 1.0);
  EXPECT_DOUBLE_EQ(ratio(c, FaultClass::TF), 1.0);
  EXPECT_DOUBLE_EQ(ratio(c, FaultClass::AF), 1.0);
  EXPECT_DOUBLE_EQ(ratio(c, FaultClass::CFin), 1.0);
  EXPECT_DOUBLE_EQ(ratio(c, FaultClass::CFid), 1.0);
  EXPECT_DOUBLE_EQ(ratio(c, FaultClass::CFst), 1.0);
  EXPECT_DOUBLE_EQ(ratio(c, FaultClass::RDF), 1.0);
}

TEST(Coverage, MarchCMissesRetentionAndWeakCells) {
  const auto c = march::march_c();
  EXPECT_DOUBLE_EQ(ratio(c, FaultClass::DRF), 0.0);   // never pauses
  EXPECT_DOUBLE_EQ(ratio(c, FaultClass::DRDF), 0.0);  // no back-to-back reads
}

TEST(Coverage, RetentionVariantAddsDrfDetection) {
  EXPECT_DOUBLE_EQ(ratio(march::march_c_plus(), FaultClass::DRF), 1.0);
  EXPECT_DOUBLE_EQ(ratio(march::march_a_plus(), FaultClass::DRF), 1.0);
  // But pausing alone does not catch weak cells.
  EXPECT_DOUBLE_EQ(ratio(march::march_c_plus(), FaultClass::DRDF), 0.0);
}

TEST(Coverage, TripleReadVariantAddsWeakCellDetection) {
  EXPECT_DOUBLE_EQ(ratio(march::march_c_plus_plus(), FaultClass::DRDF), 1.0);
  EXPECT_DOUBLE_EQ(ratio(march::march_a_plus_plus(), FaultClass::DRDF), 1.0);
  // And keeps everything the + variant had.
  EXPECT_DOUBLE_EQ(ratio(march::march_c_plus_plus(), FaultClass::DRF), 1.0);
  EXPECT_DOUBLE_EQ(ratio(march::march_c_plus_plus(), FaultClass::SAF), 1.0);
}

TEST(Coverage, MatsIsWeakerThanMarchC) {
  const auto m = march::mats();
  EXPECT_DOUBLE_EQ(ratio(m, FaultClass::SAF), 1.0);  // MATS's design goal
  // Falling transitions are never *verified*: rising TFs are guaranteed
  // (ratio > 0.5); falling TFs are caught only when random power-up leaves
  // the cell at 1 so the initializing w0 visibly fails (ratio < 1).
  EXPECT_GT(ratio(m, FaultClass::TF), 0.5);
  EXPECT_LT(ratio(m, FaultClass::TF), 1.0);
  EXPECT_LT(ratio(m, FaultClass::CFin), 1.0);
  EXPECT_LT(ratio(m, FaultClass::CFid), 1.0);
}

TEST(Coverage, MatsPlusDetectsAddressFaults) {
  const auto m = march::mats_plus();
  EXPECT_DOUBLE_EQ(ratio(m, FaultClass::SAF), 1.0);
  EXPECT_DOUBLE_EQ(ratio(m, FaultClass::AF), 1.0);
  // The final w0 sweep is never verified: falling TFs are not guaranteed
  // (only power-up luck catches some).
  EXPECT_GT(ratio(m, FaultClass::TF), 0.5);
  EXPECT_LT(ratio(m, FaultClass::TF), 1.0);
}

TEST(Coverage, MarchXClosesTheTransitionGap) {
  EXPECT_DOUBLE_EQ(ratio(march::march_x(), FaultClass::TF), 1.0);
}

TEST(Coverage, MarchAMatchesMarchCOnStaticClasses) {
  const auto a = march::march_a();
  EXPECT_DOUBLE_EQ(ratio(a, FaultClass::SAF), 1.0);
  EXPECT_DOUBLE_EQ(ratio(a, FaultClass::TF), 1.0);
  EXPECT_DOUBLE_EQ(ratio(a, FaultClass::CFin), 1.0);
}

TEST(Coverage, StuckOpenNeedsReadAfterWriteAfterRead) {
  // Within an (r,w) element the sense residue always agrees with the
  // expected value, so plain March C barely sees SOF cells (the classic
  // result that SOFs escape simple march tests).  Elements of the shape
  // (r d, w ~d, r ~d) — March Y's sweeps, and the retention tail the "+"
  // variants append — re-read the cell right after the lost write, where
  // the residue still holds the old value: full detection.
  EXPECT_LT(ratio(march::march_c(), FaultClass::SOF), 0.3);
  EXPECT_LT(ratio(march::march_a(), FaultClass::SOF), 0.3);
  EXPECT_DOUBLE_EQ(ratio(march::march_y(), FaultClass::SOF), 1.0);
  EXPECT_DOUBLE_EQ(ratio(march::march_c_plus(), FaultClass::SOF), 1.0);
  EXPECT_DOUBLE_EQ(ratio(march::march_c_plus_plus(), FaultClass::SOF), 1.0);
}

TEST(Coverage, IncorrectReadsAreAlwaysCaught) {
  // An IRF mismatches every read of the cell, so any algorithm that reads
  // each cell at least once detects all IRFs.
  EXPECT_DOUBLE_EQ(ratio(march::mats(), FaultClass::IRF), 1.0);
  EXPECT_DOUBLE_EQ(ratio(march::march_c(), FaultClass::IRF), 1.0);
  EXPECT_DOUBLE_EQ(ratio(march::march_ss(), FaultClass::IRF), 1.0);
}

TEST(Coverage, WriteDisturbsNeedNonTransitionWrites) {
  // March SS has verified non-transition writes (r0,r0,w0,r0,...); the
  // March C/A family never writes a value a cell already holds after the
  // initializing sweep, so WDF detection there rides on power-up luck.
  EXPECT_DOUBLE_EQ(ratio(march::march_ss(), FaultClass::WDF), 1.0);
  const double c = ratio(march::march_c(), FaultClass::WDF);
  EXPECT_GT(c, 0.0);
  EXPECT_LT(c, 1.0);
  const double cpp = ratio(march::march_c_plus_plus(), FaultClass::WDF);
  EXPECT_LT(cpp, 1.0);
}

TEST(Coverage, MarchSsCoversAllSimpleStaticFaults) {
  const auto ss = march::march_ss();
  for (FaultClass cls :
       {FaultClass::SAF, FaultClass::TF, FaultClass::CFin, FaultClass::CFid,
        FaultClass::CFst, FaultClass::AF, FaultClass::IRF, FaultClass::WDF,
        FaultClass::RDF, FaultClass::DRDF}) {
    EXPECT_DOUBLE_EQ(ratio(ss, cls), 1.0) << memsim::fault_class_name(cls);
  }
  // Static means no pauses: retention faults are out of scope for SS.
  EXPECT_DOUBLE_EQ(ratio(ss, FaultClass::DRF), 0.0);
}

TEST(Coverage, MarchGAddsRetentionAndRecovery) {
  const auto g = march::march_g();
  EXPECT_DOUBLE_EQ(ratio(g, FaultClass::DRF), 1.0);
  EXPECT_DOUBLE_EQ(ratio(g, FaultClass::SOF), 1.0);  // (r,w,r) components
  EXPECT_DOUBLE_EQ(ratio(g, FaultClass::SAF), 1.0);
  EXPECT_DOUBLE_EQ(ratio(g, FaultClass::CFid), 1.0);
}

TEST(Coverage, MarchUAndLrMatchMarchCOnStaticClasses) {
  for (const auto& alg : {march::march_u(), march::march_lr()}) {
    EXPECT_DOUBLE_EQ(ratio(alg, FaultClass::SAF), 1.0) << alg.name();
    EXPECT_DOUBLE_EQ(ratio(alg, FaultClass::TF), 1.0) << alg.name();
    EXPECT_DOUBLE_EQ(ratio(alg, FaultClass::AF), 1.0) << alg.name();
    EXPECT_DOUBLE_EQ(ratio(alg, FaultClass::CFin), 1.0) << alg.name();
  }
}

// Monotonicity property: C++ detects a superset of C+ which detects a
// superset of C, class by class.
TEST(Coverage, EnhancementIsMonotone) {
  for (FaultClass cls : memsim::all_fault_classes()) {
    const double c = ratio(march::march_c(), cls);
    const double cp = ratio(march::march_c_plus(), cls);
    const double cpp = ratio(march::march_c_plus_plus(), cls);
    EXPECT_LE(c, cp + 1e-9) << memsim::fault_class_name(cls);
    EXPECT_LE(cp, cpp + 1e-9) << memsim::fault_class_name(cls);
  }
}

// Word-oriented coverage: the background sweep preserves detection of
// intra-word coupling.
TEST(Coverage, WordOrientedInterBitCoupling) {
  const MemoryGeometry word{.address_bits = 3, .word_bits = 4,
                            .num_ports = 1};
  // Aggressor and victim inside the same word.
  memsim::FaultyMemory mem{word, 1};
  mem.add_fault(
      memsim::InversionCouplingFault{{5, 1}, {5, 2}, /*on_rising=*/true});
  const auto stream = march::expand(march::march_c(), word);
  EXPECT_FALSE(march::run_stream(stream, mem).passed());
}

TEST(Coverage, LinkedFaultsAreMarchLrsSpeciality) {
  // Linked CFid pairs sharing a victim can mask each other; March LR was
  // designed to detect them, the March C family provably misses some.
  const auto lr =
      march::evaluate_linked_coverage(march::march_lr(), kGeom, kOpts);
  const auto c =
      march::evaluate_linked_coverage(march::march_c(), kGeom, kOpts);
  EXPECT_EQ(lr.detected, lr.total);
  EXPECT_LT(c.detected, c.total);
  EXPECT_GT(c.ratio(), 0.5);  // the misses are a minority
}

TEST(Coverage, LinkedUniverseIsWellFormed) {
  const auto universe = march::make_linked_cfid_universe(kGeom, 9, 32);
  EXPECT_EQ(universe.size(), 32u);
  for (const auto& [a, b] : universe) {
    const auto& f1 = std::get<memsim::IdempotentCouplingFault>(a);
    const auto& f2 = std::get<memsim::IdempotentCouplingFault>(b);
    EXPECT_EQ(f1.victim, f2.victim);
    EXPECT_NE(f1.aggressor, f2.aggressor);
    EXPECT_NE(f1.aggressor, f1.victim);
    EXPECT_NE(f1.forced_value, f2.forced_value);
  }
  EXPECT_EQ(march::make_linked_cfid_universe(kGeom, 9, 32), universe);
}

TEST(Coverage, MatrixAndFormatting) {
  const std::vector<march::MarchAlgorithm> algs{march::march_c(),
                                                march::march_c_plus()};
  const std::vector<FaultClass> classes{FaultClass::SAF, FaultClass::DRF};
  const auto rows = march::coverage_matrix(algs, classes, kGeom, kOpts);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].algorithm, "March C");
  EXPECT_DOUBLE_EQ(rows[0].cells.at(FaultClass::DRF).ratio(), 0.0);
  EXPECT_DOUBLE_EQ(rows[1].cells.at(FaultClass::DRF).ratio(), 1.0);
  const std::string table = march::format_coverage_table(rows, classes);
  EXPECT_NE(table.find("March C+"), std::string::npos);
  EXPECT_NE(table.find("100%"), std::string::npos);
}

TEST(RunStream, CountsAndFailureCap) {
  memsim::FaultyMemory mem{kGeom, 1};
  mem.add_fault(memsim::StuckAtFault{{0, 0}, true});
  mem.add_fault(memsim::StuckAtFault{{1, 0}, true});
  const auto stream = march::expand(march::march_c(), kGeom);
  const auto r = march::run_stream(stream, mem, /*max_failures=*/1);
  EXPECT_EQ(r.failures.size(), 1u);  // capped, but the run completed
  EXPECT_EQ(r.reads + r.writes, stream.size());
}

}  // namespace
