// March substrate tests: algorithm representation, transforms, the DSL
// parser, the algorithm library, and the reference expansion.

#include <gtest/gtest.h>

#include "march/expand.h"
#include "march/library.h"
#include "march/parser.h"

namespace {

using namespace pmbist;
using namespace pmbist::march;
using memsim::MemoryGeometry;

// --- representation ----------------------------------------------------------

TEST(March, OpAndElementFormatting) {
  EXPECT_EQ(r0().to_string(), "r0");
  EXPECT_EQ(w1().to_string(), "w1");
  EXPECT_EQ(up({r0(), w1()}).to_string(), "up(r0,w1)");
  EXPECT_EQ(down({r1()}).to_string(), "down(r1)");
  EXPECT_EQ(MarchElement::pause(2000).to_string(), "pause(2000ns)");
}

TEST(March, ComplementOrder) {
  EXPECT_EQ(complement(AddressOrder::Up), AddressOrder::Down);
  EXPECT_EQ(complement(AddressOrder::Down), AddressOrder::Up);
  EXPECT_EQ(complement(AddressOrder::Any), AddressOrder::Any);
}

TEST(March, CountsAndValidation) {
  const auto c = march_c();
  EXPECT_EQ(c.ops_per_cell(), 10);  // 10n March C
  EXPECT_EQ(c.reads_per_cell(), 5);
  EXPECT_EQ(c.march_element_count(), 6);
  EXPECT_TRUE(c.validate().empty());

  const MarchAlgorithm bad{"bad", {up({r0()})}};
  EXPECT_FALSE(bad.validate().empty());  // starts with a read
  const MarchAlgorithm empty_el{"bad2", {any({w0()}), up({})}};
  EXPECT_FALSE(empty_el.validate().empty());
  EXPECT_FALSE(MarchAlgorithm{}.validate().empty());
}

TEST(March, FinalDataValue) {
  EXPECT_EQ(final_data_value(march_c()), 0);
  EXPECT_EQ(final_data_value(mats()), 1);  // ends after w1
  const MarchAlgorithm read_only{"ro", {any({w1()}), any({r1()})}};
  EXPECT_EQ(final_data_value(read_only), 1);
}

TEST(March, RetentionTransformAppendsPaperTail) {
  const auto cp = with_retention(march_c(), 5000, "C+");
  ASSERT_EQ(cp.elements().size(), march_c().elements().size() + 4);
  const auto& tail = cp.elements();
  const std::size_t n = tail.size();
  EXPECT_TRUE(tail[n - 4].is_pause);
  EXPECT_EQ(tail[n - 4].pause_ns, 5000u);
  EXPECT_EQ(tail[n - 3].ops,
            (std::vector<MarchOp>{r0(), w1(), r1()}));  // final value is 0
  EXPECT_TRUE(tail[n - 2].is_pause);
  EXPECT_EQ(tail[n - 1].ops, (std::vector<MarchOp>{r1()}));
}

TEST(March, TripleReadTransform) {
  const auto y3 = with_triple_reads(march_y(), "Y3");
  // March Y is 8n with 5 reads; tripling adds 2 per read -> 18n.
  EXPECT_EQ(y3.ops_per_cell(), 18);
  EXPECT_EQ(y3.reads_per_cell(), 15);
  // Writes untouched, pauses untouched.
  const auto cpp = march_c_plus_plus();
  EXPECT_EQ(cpp.ops_per_cell(),
            march_c_plus().ops_per_cell() +
                2 * march_c_plus().reads_per_cell());
}

// --- parser --------------------------------------------------------------------

TEST(Parser, RoundTripsLibraryAlgorithms) {
  for (const auto& alg : all_algorithms()) {
    const auto reparsed = parse(alg.to_string(), alg.name());
    EXPECT_EQ(reparsed.elements(), alg.elements()) << alg.name();
  }
}

TEST(Parser, AcceptsFlexibleSyntax) {
  const auto a = parse("any(w0);up(r0,w1);down(r1,w0)");
  EXPECT_EQ(a.elements().size(), 3u);
  const auto b = parse("{ any ( w0 ) ; pause ( 10 us ) ; any ( r0 ) ; }");
  EXPECT_EQ(b.elements().size(), 3u);
  EXPECT_EQ(b.elements()[1].pause_ns, 10'000u);
  const auto c = parse("any(w1); pause; any(r1)");
  EXPECT_EQ(c.elements()[1].pause_ns, 100'000'000u);  // default 100 ms
}

TEST(Parser, RejectsMalformedInput) {
  EXPECT_THROW((void)parse(""), ParseError);
  EXPECT_THROW((void)parse("sideways(w0)"), ParseError);
  EXPECT_THROW((void)parse("up(w2)"), ParseError);
  EXPECT_THROW((void)parse("up(x0)"), ParseError);
  EXPECT_THROW((void)parse("up(w0"), ParseError);
  EXPECT_THROW((void)parse("up(w0)) extra"), ParseError);
  EXPECT_THROW((void)parse("pause(10 lightyears)"), ParseError);
  EXPECT_THROW((void)parse("{ up(w0)"), ParseError);
  try {
    (void)parse("up(w0); zz(r0)");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_GT(e.offset(), 0u);
  }
}

// --- library ---------------------------------------------------------------------

TEST(Library, ComplexityCoefficients) {
  EXPECT_EQ(mats().ops_per_cell(), 4);
  EXPECT_EQ(mats_plus().ops_per_cell(), 5);
  EXPECT_EQ(mats_plus_plus().ops_per_cell(), 6);
  EXPECT_EQ(march_x().ops_per_cell(), 6);
  EXPECT_EQ(march_y().ops_per_cell(), 8);
  EXPECT_EQ(march_c().ops_per_cell(), 10);
  EXPECT_EQ(march_c_orig().ops_per_cell(), 11);
  EXPECT_EQ(march_u().ops_per_cell(), 13);
  EXPECT_EQ(march_lr().ops_per_cell(), 14);
  EXPECT_EQ(march_a().ops_per_cell(), 15);
  EXPECT_EQ(march_b().ops_per_cell(), 17);
  EXPECT_EQ(march_ss().ops_per_cell(), 22);
  EXPECT_EQ(march_g().ops_per_cell(), 23);
}

TEST(Library, AllAlgorithmsValidate) {
  for (const auto& alg : all_algorithms())
    EXPECT_TRUE(alg.validate().empty()) << alg.name();
}

TEST(Library, ByNameLookup) {
  EXPECT_EQ(by_name("March C++").name(), "March C++");
  EXPECT_THROW((void)by_name("March Z"), std::out_of_range);
}

TEST(Library, PaperTableOrder) {
  const auto algs = paper_table_algorithms();
  ASSERT_EQ(algs.size(), 6u);
  EXPECT_EQ(algs[0].name(), "March C");
  EXPECT_EQ(algs[2].name(), "March C++");
  EXPECT_EQ(algs[5].name(), "March A++");
}

// --- expansion -------------------------------------------------------------------

TEST(Expand, StandardBackgrounds) {
  EXPECT_EQ(standard_backgrounds(1), (std::vector<memsim::Word>{0}));
  EXPECT_EQ(standard_backgrounds(8),
            (std::vector<memsim::Word>{0x00, 0xAA, 0xCC, 0xF0}));
  EXPECT_EQ(standard_backgrounds(4).size(), 3u);
  EXPECT_EQ(standard_backgrounds(64).size(), 7u);
}

TEST(Expand, ApplyBackground) {
  EXPECT_EQ(apply_background(false, 0xAA, 0xFF), 0xAAu);
  EXPECT_EQ(apply_background(true, 0xAA, 0xFF), 0x55u);
  EXPECT_EQ(apply_background(true, 0x0, 0x1), 0x1u);
}

TEST(Expand, OpCountFormula) {
  const MemoryGeometry g{.address_bits = 4, .word_bits = 8, .num_ports = 2};
  const auto stream = expand(march_c(), g);
  // 10 ops/cell x 16 words x 4 backgrounds x 2 ports.
  EXPECT_EQ(expanded_op_count(march_c(), g), 10u * 16 * 4 * 2);
  std::size_t memops = 0;
  for (const auto& op : stream)
    if (op.kind != MemOp::Kind::Pause) ++memops;
  EXPECT_EQ(memops, expanded_op_count(march_c(), g));
}

TEST(Expand, ElementOrderingWithinStream) {
  const MemoryGeometry g{.address_bits = 2};
  const auto stream = expand(mats_plus(), g);
  // any(w0): addresses 0..3; up(r0,w1): (r,w) per address ascending;
  // down(r1,w0): descending.
  ASSERT_EQ(stream.size(), 4u + 8u + 8u);
  EXPECT_EQ(stream[0], MemOp::write(0, 0, 0));
  EXPECT_EQ(stream[3], MemOp::write(0, 3, 0));
  EXPECT_EQ(stream[4], MemOp::read(0, 0, 0));
  EXPECT_EQ(stream[5], MemOp::write(0, 0, 1));
  EXPECT_EQ(stream[12], MemOp::read(0, 3, 1));
  EXPECT_EQ(stream[13], MemOp::write(0, 3, 0));
  EXPECT_EQ(stream[18], MemOp::read(0, 0, 1));
  EXPECT_EQ(stream[19], MemOp::write(0, 0, 0));
}

TEST(Expand, LoopNestingPortOutermost) {
  const MemoryGeometry g{.address_bits = 1, .word_bits = 2, .num_ports = 2};
  const auto stream = expand(mats(), g);
  // 4 ops/cell x 2 words x 2 backgrounds x 2 ports = 32 ops.
  ASSERT_EQ(stream.size(), 32u);
  // First half is port 0, second half port 1.
  for (std::size_t i = 0; i < 16; ++i) EXPECT_EQ(stream[i].port, 0);
  for (std::size_t i = 16; i < 32; ++i) EXPECT_EQ(stream[i].port, 1);
  // Within a port: background 0 (write 0) then background 1 (write 0b01).
  EXPECT_EQ(stream[0].data, 0u);
  EXPECT_EQ(stream[8].data, 0b10u);  // background 0b10, d=0
}

TEST(Expand, PausePlacement) {
  const MemoryGeometry g{.address_bits = 2};
  const auto stream = expand(march_c_plus(), g);
  std::vector<std::size_t> pause_positions;
  for (std::size_t i = 0; i < stream.size(); ++i)
    if (stream[i].kind == MemOp::Kind::Pause) pause_positions.push_back(i);
  ASSERT_EQ(pause_positions.size(), 2u);
  // First pause right after March C's 10n ops (40 ops for n=4).
  EXPECT_EQ(pause_positions[0], 40u);
  // Second pause after the 3-op retention element (12 more ops).
  EXPECT_EQ(pause_positions[1], 40u + 1 + 12);
  EXPECT_EQ(stream[pause_positions[0]].pause_ns, kDefaultPauseNs);
}

TEST(Expand, SinglePassMatchesFullExpansionForSimpleGeometry) {
  const MemoryGeometry g{.address_bits = 3};
  EXPECT_EQ(expand(march_y(), g), expand_single_pass(march_y(), g, 0, 0));
}

}  // namespace
