// The pluggable MemoryBackend subsystem (backend/): the interface and its
// two implementations, the host-RAM memtest engine, and the contracts the
// rest of the tree relies on —
//
//   * SimBackend is a zero-cost adapter: driving a session through it is
//     bit-identical to driving the behavioral simulator directly;
//   * HostRamBackend maps real anonymous memory but honors the same
//     geometry/masking semantics, so every library algorithm (and a fuzzed
//     corpus of generated ones) produces identical memtest signatures and
//     verdicts on both backends;
//   * memtest results are pure functions of (algorithm, size, passes,
//     backgrounds) — never of --jobs — and injected mismatches are caught
//     on both backends;
//   * the soc scheduler and field manager run fault-free chips on either
//     backend with identical reports, and reject hostram + fault injection;
//   * the calibrated power model anchors at the reference geometry and
//     pins old-vs-new schedule feasibility.

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "backend/backend.h"
#include "backend/hostram_backend.h"
#include "backend/memtest.h"
#include "backend/sim_backend.h"
#include "bist/session.h"
#include "field/manager.h"
#include "field/profile.h"
#include "march/library.h"
#include "march/march.h"
#include "march/parser.h"
#include "mbist_hardwired/controller.h"
#include "memsim/faulty_memory.h"
#include "memsim/memory.h"
#include "netlist/tech_library.h"
#include "soc/chip.h"
#include "soc/scheduler.h"

namespace {

using namespace pmbist;
using backend::BackendKind;

// --- kind parsing -----------------------------------------------------

TEST(BackendKindTest, ParseAndPrintRoundTrip) {
  EXPECT_EQ(backend::parse_backend("sim"), BackendKind::Sim);
  EXPECT_EQ(backend::parse_backend("hostram"), BackendKind::HostRam);
  EXPECT_EQ(backend::parse_backend("frobnicate"), std::nullopt);
  EXPECT_EQ(backend::parse_backend(""), std::nullopt);
  for (const auto kind : {BackendKind::Sim, BackendKind::HostRam})
    EXPECT_EQ(backend::parse_backend(backend::to_string(kind)), kind);
}

TEST(BackendKindTest, ParseSizeBytes) {
  EXPECT_EQ(backend::parse_size_bytes("4096"), 4096u);
  EXPECT_EQ(backend::parse_size_bytes("64K"), 64u << 10);
  EXPECT_EQ(backend::parse_size_bytes("256M"), 256ull << 20);
  EXPECT_EQ(backend::parse_size_bytes("1G"), 1ull << 30);
  EXPECT_EQ(backend::parse_size_bytes("1GiB"), 1ull << 30);
  EXPECT_EQ(backend::parse_size_bytes("2Mb"), 2ull << 20);
  EXPECT_EQ(backend::parse_size_bytes(""), std::nullopt);
  EXPECT_EQ(backend::parse_size_bytes("M"), std::nullopt);
  EXPECT_EQ(backend::parse_size_bytes("12Q"), std::nullopt);
  EXPECT_EQ(backend::parse_size_bytes("1.5G"), std::nullopt);
  EXPECT_EQ(backend::parse_size_bytes("99999999999999999999"), std::nullopt);
  EXPECT_EQ(backend::parse_size_bytes("99999999999G"), std::nullopt);
}

// --- memtest geometry / sharding --------------------------------------

TEST(MemtestGeometryTest, RoundsDownToPowerOfTwoWords) {
  // 1 MiB = 2^17 64-bit words.
  const auto g = backend::memtest_geometry(1ull << 20);
  EXPECT_EQ(g.word_bits, 64);
  EXPECT_EQ(g.num_ports, 1);
  EXPECT_EQ(g.address_bits, 17);
  // Non-power-of-two sizes round down.
  EXPECT_EQ(backend::memtest_geometry((1ull << 20) + 12345).address_bits, 17);
  // The floor: even tiny requests get the minimum geometry.
  EXPECT_EQ(backend::memtest_geometry(1).address_bits, 6);
}

TEST(MemtestGeometryTest, ShardCountIsAPureFunctionOfSize) {
  // Sharding depends on the geometry only — never on --jobs — so the
  // per-shard MISR fold (and hence the signature) is jobs-invariant.
  const auto small = backend::memtest_geometry(4096);  // 512 words
  EXPECT_EQ(backend::memtest_shards(small), 1);
  const auto big = backend::memtest_geometry(256ull << 20);
  const int shards = backend::memtest_shards(big);
  EXPECT_EQ(shards, 64);  // capped
  // Every shard holds at least 4096 words.
  EXPECT_GE(big.num_words() / static_cast<std::size_t>(shards), 4096u);
  // Power-of-two shard counts divide the power-of-two word count exactly.
  EXPECT_EQ(big.num_words() % static_cast<std::size_t>(shards), 0u);
}

// --- HostRamBackend ---------------------------------------------------

TEST(HostRamBackendTest, ReadWriteRoundTripWithMasking) {
  const memsim::MemoryGeometry g{.address_bits = 10, .word_bits = 16,
                                 .num_ports = 1};
  backend::HostRamBackend ram{g};
  EXPECT_TRUE(ram.is_open());
  EXPECT_EQ(ram.name(), "hostram");
  EXPECT_TRUE(ram.capabilities().direct_map);
  EXPECT_FALSE(ram.capabilities().behavioral);

  ram.write(0, 5, 0xFFFF'FFFF'FFFF'FFFFull);
  EXPECT_EQ(ram.read(0, 5), 0xFFFFu);  // stored masked to word_bits
  ram.write(0, 5, 0x1234u);
  EXPECT_EQ(ram.read(0, 5), 0x1234u);
  ram.fence();

  const auto words = ram.mapped_words();
  ASSERT_EQ(words.size(), g.num_words());
  EXPECT_EQ(words[5], 0x1234u);

  ram.advance_time_ns(100);
  ram.close();
  EXPECT_FALSE(ram.is_open());
  ram.close();  // idempotent
}

TEST(HostRamBackendTest, StartsZeroFilled) {
  const memsim::MemoryGeometry g{.address_bits = 12, .word_bits = 64,
                                 .num_ports = 1};
  backend::HostRamBackend ram{g};
  for (const auto word : ram.mapped_words()) EXPECT_EQ(word, 0u);
}

TEST(HostRamBackendTest, RejectsMultiPortGeometries) {
  const memsim::MemoryGeometry g{.address_bits = 8, .word_bits = 1,
                                 .num_ports = 2};
  EXPECT_THROW((backend::HostRamBackend{g}), backend::BackendError);
}

TEST(HostRamBackendTest, HugePageRequestDegradesGracefully) {
  // The request must succeed whether or not the host grants huge pages;
  // the capability descriptor reports what actually happened.
  const memsim::MemoryGeometry g{.address_bits = 16, .word_bits = 64,
                                 .num_ports = 1};
  backend::HostRamBackend ram{g, {.request_huge_pages = true}};
  EXPECT_GT(ram.capabilities().page_bytes, 0u);
  ram.write(0, 0, 1);
  EXPECT_EQ(ram.read(0, 0), 1u);
}

// --- SimBackend and the BackendMemory adapter -------------------------

TEST(SimBackendTest, BorrowingAdapterForwardsToTheSimulator) {
  const memsim::MemoryGeometry g{.address_bits = 6, .word_bits = 8,
                                 .num_ports = 1};
  memsim::SramModel sram{g};
  backend::SimBackend sim{sram};
  EXPECT_EQ(sim.name(), "sim");
  EXPECT_TRUE(sim.capabilities().behavioral);
  EXPECT_TRUE(sim.mapped_words().empty());  // no direct map

  sim.write(0, 3, 0xAB);
  EXPECT_EQ(sim.read(0, 3), sram.read(0, 3));
  sram.write(0, 4, 0xCD);
  EXPECT_EQ(sim.read(0, 4), 0xCDu);
}

TEST(SimBackendTest, OwningConstructorFillsTheModel) {
  const memsim::MemoryGeometry g{.address_bits = 6, .word_bits = 64,
                                 .num_ports = 1};
  backend::SimBackend sim{g, 0};
  for (memsim::Address a = 0; a < g.num_words(); ++a)
    EXPECT_EQ(sim.read(0, a), 0u);
}

TEST(BackendMemoryTest, AdapterDrivesAnyBackendThroughTheMemsimInterface) {
  const memsim::MemoryGeometry g{.address_bits = 8, .word_bits = 32,
                                 .num_ports = 1};
  backend::HostRamBackend ram{g};
  backend::BackendMemory view{ram};
  EXPECT_EQ(view.geometry(), g);
  view.write(0, 7, 0xDEADBEEFull);
  EXPECT_EQ(view.read(0, 7), 0xDEADBEEFull);
  EXPECT_EQ(ram.read(0, 7), 0xDEADBEEFull);
}

// --- session parity (the byte-identity pin for the rewiring) ----------

TEST(SessionParityTest, MemoryOverloadEqualsExplicitSimBackend) {
  const memsim::MemoryGeometry g{.address_bits = 8, .word_bits = 1,
                                 .num_ports = 1};
  const auto alg = march::march_c();

  memsim::SramModel direct{g, 7};
  mbist_hardwired::HardwiredController c1{
      alg, mbist_hardwired::HardwiredConfig{.geometry = g}};
  const auto via_memory = bist::run_session(c1, direct);

  memsim::SramModel wrapped{g, 7};
  backend::SimBackend sim{wrapped};
  mbist_hardwired::HardwiredController c2{
      alg, mbist_hardwired::HardwiredConfig{.geometry = g}};
  const auto via_backend = bist::run_session(c2, sim);

  EXPECT_EQ(via_memory, via_backend);
  EXPECT_TRUE(via_backend.passed());
}

TEST(SessionParityTest, HostRamSessionMatchesSimOnFaultFreeMemory) {
  // A full march starts by writing every cell, so the undefined power-up
  // contents never reach a comparator: hostram (zero-filled) and the
  // simulator (seeded random fill) must agree on everything.
  const memsim::MemoryGeometry g{.address_bits = 8, .word_bits = 1,
                                 .num_ports = 1};
  const auto alg = march::march_c();

  memsim::SramModel sram{g, 42};
  backend::SimBackend sim{sram};
  mbist_hardwired::HardwiredController c1{
      alg, mbist_hardwired::HardwiredConfig{.geometry = g}};
  const auto on_sim = bist::run_session(c1, sim);

  backend::HostRamBackend ram{g};
  mbist_hardwired::HardwiredController c2{
      alg, mbist_hardwired::HardwiredConfig{.geometry = g}};
  const auto on_ram = bist::run_session(c2, ram);

  EXPECT_EQ(on_sim, on_ram);
  EXPECT_TRUE(on_ram.passed());
}

// --- memtest: cross-backend equivalence -------------------------------

backend::MemtestReport run_small(const march::MarchAlgorithm& alg,
                                 BackendKind kind, int jobs = 1,
                                 bool inject = false) {
  backend::MemtestOptions opts;
  opts.size_bytes = 256u << 10;  // 32K words: fast but multi-shard
  opts.backgrounds = 2;          // zeros + one alternating pattern
  opts.jobs = jobs;
  opts.backend = kind;
  opts.inject_error = inject;
  return backend::run_memtest(alg, opts);
}

TEST(MemtestEquivalenceTest, EveryLibraryAlgorithmAgreesAcrossBackends) {
  for (const auto& alg : march::all_algorithms()) {
    SCOPED_TRACE(alg.name());
    const auto sim = run_small(alg, BackendKind::Sim);
    const auto ram = run_small(alg, BackendKind::HostRam);
    EXPECT_EQ(sim.signature, ram.signature);
    EXPECT_EQ(sim.reads, ram.reads);
    EXPECT_EQ(sim.writes, ram.writes);
    EXPECT_EQ(sim.pauses, ram.pauses);
    EXPECT_EQ(sim.mismatches, 0u);
    EXPECT_EQ(ram.mismatches, 0u);
    EXPECT_TRUE(sim.passed());
    EXPECT_TRUE(ram.passed());
    // The deterministic reports differ only in the backend name line.
    EXPECT_EQ(sim.backend_name, "sim");
    EXPECT_EQ(ram.backend_name, "hostram");
  }
}

TEST(MemtestEquivalenceTest, FuzzedAlgorithmsAgreeAcrossBackends) {
  // A seeded corpus of generated algorithms: random element counts, op
  // sequences, and address orders, constrained only by the structural rule
  // (the first op of the first element is a write).
  std::mt19937_64 rng{0xB157'CAFEu};
  auto coin = [&](int denom) { return static_cast<int>(rng() % denom); };
  for (int iteration = 0; iteration < 24; ++iteration) {
    std::vector<march::MarchElement> elements;
    const int num_elements = 1 + coin(5);
    for (int e = 0; e < num_elements; ++e) {
      march::MarchElement element;
      element.order = static_cast<march::AddressOrder>(coin(3));
      const int num_ops = 1 + coin(4);
      for (int o = 0; o < num_ops; ++o) {
        march::MarchOp op;
        const bool must_write = e == 0 && o == 0;
        op.kind = must_write || coin(2) == 0 ? march::MarchOp::Kind::Write
                                             : march::MarchOp::Kind::Read;
        op.data = coin(2) == 1;
        element.ops.push_back(op);
      }
      elements.push_back(std::move(element));
    }
    march::MarchAlgorithm alg{"fuzz" + std::to_string(iteration),
                              std::move(elements)};
    ASSERT_TRUE(alg.validate().empty()) << alg.to_string();
    SCOPED_TRACE(alg.to_string());

    const auto sim = run_small(alg, BackendKind::Sim);
    const auto ram = run_small(alg, BackendKind::HostRam);
    EXPECT_EQ(sim.signature, ram.signature);
    EXPECT_EQ(sim.reads, ram.reads);
    EXPECT_EQ(sim.writes, ram.writes);
    // A generated algorithm may read a value its own elements never wrote
    // at that point (e.g. r1 right after w0) — that is a legitimate FAIL,
    // but it must be the SAME fail on both backends.
    EXPECT_EQ(sim.mismatches, ram.mismatches);
    EXPECT_EQ(sim.passed(), ram.passed());
  }
}

// --- memtest: determinism, reporting, injection -----------------------

TEST(MemtestTest, ReportIsByteIdenticalAcrossJobs) {
  const auto alg = march::march_c();
  const auto reference = run_small(alg, BackendKind::HostRam, 1);
  for (const int jobs : {2, 4, 8}) {
    const auto report = run_small(alg, BackendKind::HostRam, jobs);
    EXPECT_EQ(backend::format_memtest_report(report),
              backend::format_memtest_report(reference))
        << "jobs=" << jobs;
  }
}

TEST(MemtestTest, ReportCarriesTheContractLines) {
  const auto report = run_small(march::by_name("MATS+"), BackendKind::Sim);
  const auto text = backend::format_memtest_report(report);
  EXPECT_NE(text.find("memtest \"MATS+\" on sim"), std::string::npos);
  EXPECT_NE(text.find("signature: 0x"), std::string::npos);
  EXPECT_NE(text.find("PASS"), std::string::npos);
  // Throughput (timing, host noise) stays out of the deterministic report.
  EXPECT_EQ(text.find("GB/s"), std::string::npos);
  const auto timing = backend::format_memtest_throughput(report);
  EXPECT_NE(timing.find("sustained: read "), std::string::npos);
  EXPECT_NE(timing.find("wall "), std::string::npos);
}

TEST(MemtestTest, PhasesCoverEveryMarchElement) {
  const auto alg = march::march_c();
  const auto report = run_small(alg, BackendKind::HostRam);
  ASSERT_EQ(report.phases.size(), alg.elements().size());
  std::uint64_t reads = 0, writes = 0;
  for (std::size_t i = 0; i < report.phases.size(); ++i) {
    EXPECT_EQ(report.phases[i].element, alg.elements()[i].to_string());
    reads += report.phases[i].reads;
    writes += report.phases[i].writes;
  }
  EXPECT_EQ(reads, report.reads);
  EXPECT_EQ(writes, report.writes);
}

TEST(MemtestTest, InjectedErrorFailsOnBothBackends) {
  const auto alg = march::march_c();
  for (const auto kind : {BackendKind::Sim, BackendKind::HostRam}) {
    SCOPED_TRACE(backend::to_string(kind));
    const auto clean = run_small(alg, kind);
    const auto injected = run_small(alg, kind, 1, true);
    EXPECT_TRUE(clean.passed());
    EXPECT_FALSE(injected.passed());
    EXPECT_EQ(injected.mismatches, 1u);
    ASSERT_EQ(injected.failures.size(), 1u);
    EXPECT_NE(injected.signature, clean.signature);
  }
}

TEST(MemtestTest, InjectionNeedsAReadLedElement) {
  // An algorithm that never leads an element with a read has no point at
  // which a flipped bit is guaranteed to be observed.
  const auto alg = march::parse("up(w0); up(w1)", "writes-only");
  backend::MemtestOptions opts;
  opts.size_bytes = 64u << 10;
  opts.backgrounds = 1;
  opts.inject_error = true;
  EXPECT_THROW((void)backend::run_memtest(alg, opts), backend::BackendError);
}

TEST(MemtestTest, RejectsInvalidRequests) {
  backend::MemtestOptions opts;
  opts.size_bytes = 64u << 10;
  opts.passes = 0;
  EXPECT_THROW((void)backend::run_memtest(march::march_c(), opts),
               backend::BackendError);
  opts.passes = 1;
  opts.misr_width = 0;
  EXPECT_THROW((void)backend::run_memtest(march::march_c(), opts),
               backend::BackendError);
  // Structurally invalid algorithm (first op reads undefined power-up).
  opts.misr_width = 32;
  EXPECT_THROW(
      (void)backend::run_memtest(march::parse("up(r0,w0)", "bad"), opts),
      backend::BackendError);
}

TEST(MemtestTest, PauseElementsAccountTimeNotOps) {
  const auto alg = march::parse("any(w0); pause(500ns); any(r0)", "retention");
  backend::MemtestOptions opts;
  opts.size_bytes = 64u << 10;
  opts.backgrounds = 1;
  const auto report = backend::run_memtest(alg, opts);
  EXPECT_TRUE(report.passed());
  EXPECT_EQ(report.pauses, 1u);
  ASSERT_EQ(report.phases.size(), 3u);
  EXPECT_TRUE(report.phases[1].is_pause);
  EXPECT_EQ(report.phases[1].reads + report.phases[1].writes, 0u);
}

// --- soc / field over the backend seam --------------------------------

/// A small fault-free chip both backends must agree on.
soc::SocDescription clean_chip() {
  soc::SocDescription chip{"clean"};
  soc::MemoryInstance a;
  a.name = "sram0";
  a.geometry = {.address_bits = 6, .word_bits = 8, .num_ports = 1};
  chip.add(a);
  soc::MemoryInstance b;
  b.name = "sram1";
  b.geometry = {.address_bits = 7, .word_bits = 4, .num_ports = 1};
  chip.add(b);
  return chip;
}

soc::TestPlan clean_plan() {
  soc::TestPlan plan;
  soc::TestAssignment a;
  a.memory = "sram0";
  a.algorithm = "March C";
  a.controller = soc::ControllerKind::Ucode;
  plan.assign(a);
  soc::TestAssignment b;
  b.memory = "sram1";
  b.algorithm = "MATS+";
  b.controller = soc::ControllerKind::Hardwired;
  plan.assign(b);
  return plan;
}

TEST(SocBackendTest, FaultFreeChipAgreesAcrossBackends) {
  const auto chip = clean_chip();
  const auto plan = clean_plan();
  const auto sim = soc::run_soc(chip, plan, {.jobs = 1});
  const auto ram = soc::run_soc(chip, plan,
                                {.jobs = 1, .backend = BackendKind::HostRam});
  EXPECT_EQ(sim, ram);
  EXPECT_TRUE(ram.all_healthy());
  EXPECT_EQ(soc::format_soc_report(chip, plan, sim),
            soc::format_soc_report(chip, plan, ram));
}

TEST(SocBackendTest, HostRamRejectsFaultInjection) {
  // The demo chip injects manufacturing defects; real host memory cannot.
  EXPECT_THROW((void)soc::run_soc(soc::demo_soc(), soc::demo_plan(),
                                  {.jobs = 1,
                                   .backend = BackendKind::HostRam}),
               soc::SocError);
}

TEST(FieldBackendTest, FaultFreeChipAgreesAcrossBackends) {
  const auto chip = clean_chip();
  const auto plan = clean_plan();
  const auto profile = field::parse_profile_text(
      "profile clean\n"
      "horizon 40000\n"
      "bus_budget 2\n"
      "window sram0 start=0 end=9000\n"
      "window sram0 start=10000 end=19000\n"
      "window sram1 start=0 end=16000\n");
  const auto sim = field::run_field(chip, plan, profile, {.jobs = 1});
  const auto ram = field::run_field(
      chip, plan, profile, {.jobs = 1, .backend = BackendKind::HostRam});
  EXPECT_EQ(sim, ram);
  EXPECT_EQ(field::format_field_report(sim), field::format_field_report(ram));
}

TEST(FieldBackendTest, HostRamRejectsFaultInjection) {
  EXPECT_THROW((void)field::run_field(soc::demo_soc(), soc::demo_plan(),
                                      field::demo_profile(),
                                      {.jobs = 1,
                                       .backend = BackendKind::HostRam}),
               soc::SocError);
}

// --- calibrated power model -------------------------------------------

TEST(PowerCalibrationTest, AnchorsAtTheReferenceGeometry) {
  // The calibration is normalized so the reference bit-oriented 1K
  // geometry keeps its heuristic weight — heuristic and calibrated models
  // agree exactly there, and diverge smoothly elsewhere.
  const memsim::MemoryGeometry reference{};
  EXPECT_DOUBLE_EQ(soc::PowerModel::calibrated_weight(reference),
                   soc::PowerModel::default_weight(reference));
  EXPECT_DOUBLE_EQ(soc::PowerModel::default_weight(reference), 11.0);
}

TEST(PowerCalibrationTest, WeightGrowsWithTheDatapath) {
  const memsim::MemoryGeometry small{.address_bits = 8, .word_bits = 1,
                                     .num_ports = 1};
  const memsim::MemoryGeometry wide{.address_bits = 8, .word_bits = 64,
                                    .num_ports = 1};
  const memsim::MemoryGeometry deep{.address_bits = 16, .word_bits = 1,
                                    .num_ports = 1};
  EXPECT_GT(soc::PowerModel::calibrated_weight(wide),
            soc::PowerModel::calibrated_weight(small));
  EXPECT_GT(soc::PowerModel::calibrated_weight(deep),
            soc::PowerModel::calibrated_weight(small));
}

TEST(PowerCalibrationTest, ModelSelectsTheWeightFunction) {
  soc::PowerModel model;
  const memsim::MemoryGeometry g{.address_bits = 12, .word_bits = 32,
                                 .num_ports = 1};
  EXPECT_DOUBLE_EQ(model.weight(g), soc::PowerModel::default_weight(g));
  model.calibrated = true;
  EXPECT_DOUBLE_EQ(model.weight(g), soc::PowerModel::calibrated_weight(g));
  // An explicit per-assignment override still wins over either model.
  soc::TestPlan plan;
  soc::TestAssignment a;
  a.memory = "m";
  a.algorithm = "March C";
  a.power_weight = 3.5;
  plan.assign(a);
  plan.set_power_calibrated(true);
  soc::MemoryInstance m;
  m.name = "m";
  m.geometry = g;
  EXPECT_DOUBLE_EQ(plan.effective_weight(plan.assignments()[0], m), 3.5);
}

TEST(PowerCalibrationTest, OldVsNewScheduleFeasibilityIsPinned) {
  // The carried-over ROADMAP item: switching the demo plan from the
  // heuristic to the calibrated model must (a) keep the chip testable once
  // the budget accommodates the recalibrated weights and (b) never change
  // any verdict — power shapes the schedule, not the results.
  const auto chip = soc::demo_soc();
  auto heuristic = soc::demo_plan();
  const auto before = soc::run_soc(chip, heuristic, {.jobs = 1});
  EXPECT_TRUE(before.all_healthy());

  auto calibrated = soc::demo_plan();
  calibrated.set_power_calibrated(true);
  // Scale the budget by the worst per-instance weight ratio so every
  // single session still fits (validate() would reject an impossible one).
  double ratio = 1.0;
  for (const auto& m : chip.memories()) {
    const double h = soc::PowerModel::default_weight(m.geometry);
    const double c = soc::PowerModel::calibrated_weight(m.geometry);
    ratio = std::max(ratio, c / h);
  }
  calibrated.set_power_budget(heuristic.power().budget * ratio);
  EXPECT_NO_THROW(calibrated.validate(chip));
  const auto after = soc::run_soc(chip, calibrated, {.jobs = 1});
  EXPECT_TRUE(after.all_healthy());

  // Same verdicts and repairs, instance by instance — only the schedule's
  // start cycles may move.
  ASSERT_EQ(before.instances.size(), after.instances.size());
  for (std::size_t i = 0; i < before.instances.size(); ++i) {
    EXPECT_EQ(before.instances[i].session, after.instances[i].session);
    EXPECT_EQ(before.instances[i].repair, after.instances[i].repair);
    EXPECT_EQ(before.instances[i].healthy(), after.instances[i].healthy());
  }
}

TEST(PowerCalibrationTest, ChipFileRoundTripsThePowerModelDirective) {
  auto chip = soc::parse_chip_text(
      "soc t\n"
      "power_budget 64\n"
      "power_model calibrated\n"
      "mem a addr_bits=6 word_bits=8\n"
      "assign a \"March C\" ucode\n");
  EXPECT_TRUE(chip.plan.power().calibrated);
  const auto printed = soc::to_chip_text(chip.description, chip.plan);
  EXPECT_NE(printed.find("power_model calibrated"), std::string::npos);
  const auto again = soc::parse_chip_text(printed);
  EXPECT_EQ(again.plan, chip.plan);
  // heuristic (the default) serializes to no directive at all.
  chip.plan.set_power_calibrated(false);
  EXPECT_EQ(soc::to_chip_text(chip.description, chip.plan)
                .find("power_model"),
            std::string::npos);
  EXPECT_THROW(
      (void)soc::parse_chip_text("soc t\npower_model frobnicate\n"
                                 "mem a addr_bits=6\nassign a \"MATS\" ucode\n"),
      soc::SocError);
}

}  // namespace
