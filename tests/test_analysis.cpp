// Static qualifier tests: known verdicts for the library algorithms, and
// the load-bearing cross-validation — the exhaustive canonical-array
// verdicts must agree with the sampled fault-simulation campaign:
//   Guaranteed  <=>  campaign ratio == 1.0
//   None         =>  campaign ratio == 0.0
//   Partial      =>  0 < ratio < 1

#include <gtest/gtest.h>

#include "march/analysis.h"
#include "march/library.h"

namespace {

using namespace pmbist;
using march::Detection;
using memsim::FaultClass;

TEST(Analysis, MarchCVerdicts) {
  const auto v = march::analyze_all(march::march_c());
  EXPECT_EQ(v.at(FaultClass::SAF), Detection::Guaranteed);
  EXPECT_EQ(v.at(FaultClass::TF), Detection::Guaranteed);
  EXPECT_EQ(v.at(FaultClass::AF), Detection::Guaranteed);
  EXPECT_EQ(v.at(FaultClass::CFin), Detection::Guaranteed);
  EXPECT_EQ(v.at(FaultClass::CFid), Detection::Guaranteed);
  EXPECT_EQ(v.at(FaultClass::CFst), Detection::Guaranteed);
  EXPECT_EQ(v.at(FaultClass::RDF), Detection::Guaranteed);
  EXPECT_EQ(v.at(FaultClass::IRF), Detection::Guaranteed);
  EXPECT_EQ(v.at(FaultClass::DRF), Detection::None);
  EXPECT_EQ(v.at(FaultClass::DRDF), Detection::None);
  EXPECT_EQ(v.at(FaultClass::WDF), Detection::Partial);
}

TEST(Analysis, EnhancementChangesVerdicts) {
  EXPECT_EQ(march::analyze(march::march_c_plus(), FaultClass::DRF),
            Detection::Guaranteed);
  EXPECT_EQ(march::analyze(march::march_c_plus(), FaultClass::DRDF),
            Detection::None);
  EXPECT_EQ(march::analyze(march::march_c_plus_plus(), FaultClass::DRDF),
            Detection::Guaranteed);
  EXPECT_EQ(march::analyze(march::march_ss(), FaultClass::WDF),
            Detection::Guaranteed);
}

TEST(Analysis, CheapAlgorithmsArePartialWhereExpected) {
  EXPECT_EQ(march::analyze(march::mats(), FaultClass::TF),
            Detection::Partial);
  EXPECT_EQ(march::analyze(march::mats_plus(), FaultClass::TF),
            Detection::Partial);
  EXPECT_EQ(march::analyze(march::march_x(), FaultClass::TF),
            Detection::Guaranteed);
  EXPECT_EQ(march::analyze(march::mats(), FaultClass::SAF),
            Detection::Guaranteed);
}

TEST(Analysis, SofNeedsReadWriteReadElements) {
  EXPECT_NE(march::analyze(march::march_c(), FaultClass::SOF),
            Detection::Guaranteed);
  EXPECT_EQ(march::analyze(march::march_y(), FaultClass::SOF),
            Detection::Guaranteed);
  EXPECT_EQ(march::analyze(march::march_g(), FaultClass::SOF),
            Detection::Guaranteed);
}

TEST(Analysis, TableFormat) {
  const std::vector<march::MarchAlgorithm> algs{march::march_c()};
  const std::vector<FaultClass> classes{FaultClass::SAF, FaultClass::DRF};
  const auto table = march::format_analysis_table(algs, classes);
  EXPECT_NE(table.find("March C"), std::string::npos);
  EXPECT_NE(table.find('G'), std::string::npos);
  EXPECT_NE(table.find('-'), std::string::npos);
}

// The cross-validation sweep: static verdicts vs the sampled campaign for
// every (library algorithm, fault class) pair.
struct CrossCase {
  const char* alg;
};

class AnalysisCrossValidation : public ::testing::TestWithParam<CrossCase> {};

TEST_P(AnalysisCrossValidation, VerdictsMatchFaultSimulation) {
  const auto alg = march::by_name(GetParam().alg);
  const memsim::MemoryGeometry geom{.address_bits = 5, .word_bits = 1,
                                    .num_ports = 1};
  const march::CoverageOptions opts{.seed = 77,
                                    .max_instances_per_class = 64};
  for (FaultClass cls : memsim::all_fault_classes()) {
    const Detection verdict = march::analyze(alg, cls);
    const double ratio =
        march::evaluate_coverage(alg, cls, geom, opts).ratio();
    switch (verdict) {
      case Detection::Guaranteed:
        EXPECT_DOUBLE_EQ(ratio, 1.0)
            << alg.name() << " / " << memsim::fault_class_name(cls);
        break;
      case Detection::None:
        EXPECT_DOUBLE_EQ(ratio, 0.0)
            << alg.name() << " / " << memsim::fault_class_name(cls);
        break;
      case Detection::Partial:
        EXPECT_GT(ratio, 0.0)
            << alg.name() << " / " << memsim::fault_class_name(cls);
        EXPECT_LT(ratio, 1.0)
            << alg.name() << " / " << memsim::fault_class_name(cls);
        break;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Library, AnalysisCrossValidation,
    ::testing::Values(CrossCase{"MATS"}, CrossCase{"MATS+"},
                      CrossCase{"MATS++"}, CrossCase{"March X"},
                      CrossCase{"March Y"}, CrossCase{"March C"},
                      CrossCase{"March C (orig)"}, CrossCase{"March U"},
                      CrossCase{"March LR"}, CrossCase{"March C+"},
                      CrossCase{"March C++"}, CrossCase{"March A"},
                      CrossCase{"March B"}, CrossCase{"March A+"},
                      CrossCase{"March A++"}, CrossCase{"March SS"},
                      CrossCase{"March G"}),
    [](const auto& info) {
      std::string name = info.param.alg;
      for (char& c : name)
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      return name;
    });

}  // namespace
