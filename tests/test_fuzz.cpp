// Randomized property tests ("fuzzing" with deterministic seeds): random
// valid march algorithms are generated and pushed through the full stack —
// assembler/compiler, cycle-accurate controllers, reference expansion,
// transparent transform — asserting the invariants that hold for *every*
// algorithm, not just the library ones.

#include <gtest/gtest.h>

#include <random>

#include "bist/session.h"
#include "diag/transparent.h"
#include "march/campaign.h"
#include "lint/cfg.h"
#include "lint/driver.h"
#include "lint/equiv.h"
#include "lint/fix.h"
#include "lint/lifter.h"
#include "lint/march_lint.h"
#include "lint/program_lint.h"
#include "march/library.h"
#include "mbist_hardwired/controller.h"
#include "mbist_pfsm/controller.h"
#include "mbist_ucode/assembler.h"
#include "mbist_ucode/controller.h"

namespace {

using namespace pmbist;
using memsim::MemoryGeometry;

march::MarchAlgorithm random_algorithm(std::mt19937& rng,
                                       bool allow_pauses) {
  std::uniform_int_distribution<int> num_elements(1, 7);
  std::uniform_int_distribution<int> num_ops(1, 5);
  std::uniform_int_distribution<int> coin(0, 1);
  std::uniform_int_distribution<int> order_pick(0, 2);

  std::vector<march::MarchElement> elements;
  // A valid algorithm starts with a write sweep (power-up is undefined).
  elements.push_back(march::any({coin(rng) ? march::w1() : march::w0()}));

  const int extra = num_elements(rng);
  // March-style state tracking so reads expect the right value: after each
  // element all cells hold the element's last written value.
  bool cell_state = elements[0].ops[0].data;
  for (int e = 0; e < extra; ++e) {
    if (allow_pauses && coin(rng) == 0 && !elements.back().is_pause) {
      elements.push_back(march::MarchElement::pause(1'000'000));
      continue;
    }
    march::MarchElement el;
    const int order = order_pick(rng);
    el.order = order == 0 ? march::AddressOrder::Up
               : order == 1 ? march::AddressOrder::Down
                            : march::AddressOrder::Any;
    const int n = num_ops(rng);
    bool value = cell_state;
    for (int j = 0; j < n; ++j) {
      if (coin(rng)) {
        el.ops.push_back(
            march::MarchOp{march::MarchOp::Kind::Read, value});
      } else {
        value = coin(rng);
        el.ops.push_back(
            march::MarchOp{march::MarchOp::Kind::Write, value});
      }
    }
    cell_state = value;
    elements.push_back(std::move(el));
  }
  return march::MarchAlgorithm{"fuzz", std::move(elements)};
}

MemoryGeometry random_geometry(std::mt19937& rng) {
  std::uniform_int_distribution<int> addr(2, 4);
  std::uniform_int_distribution<int> word_pick(0, 2);
  std::uniform_int_distribution<int> ports(1, 2);
  const int words[] = {1, 2, 4};
  return MemoryGeometry{.address_bits = addr(rng),
                        .word_bits = words[word_pick(rng)],
                        .num_ports = ports(rng)};
}

class FuzzEquivalence : public ::testing::TestWithParam<int> {};

// Property: for any valid algorithm and geometry, the microcode and
// hardwired controllers replay the reference expansion exactly, the folded
// and flat microcode encodings agree, and a fault-free run passes.
TEST_P(FuzzEquivalence, MicrocodeAndHardwiredMatchExpansion) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()));
  const auto alg = random_algorithm(rng, /*allow_pauses=*/true);
  ASSERT_TRUE(alg.validate().empty()) << alg.to_string();
  const auto geometry = random_geometry(rng);
  const auto expected = march::expand(alg, geometry);

  mbist_ucode::MicrocodeController ucode{
      {.geometry = geometry, .storage_depth = 64}};
  ucode.load_algorithm(alg);
  EXPECT_EQ(bist::collect_ops(ucode, 100'000'000), expected)
      << alg.to_string();

  mbist_ucode::MicrocodeController flat{
      {.geometry = geometry, .storage_depth = 64}};
  flat.load_algorithm(alg, {.symmetric_encoding = false});
  EXPECT_EQ(bist::collect_ops(flat, 100'000'000), expected)
      << alg.to_string();

  mbist_hardwired::HardwiredController hw{alg, {.geometry = geometry}};
  EXPECT_EQ(bist::collect_ops(hw, 100'000'000), expected) << alg.to_string();

  memsim::SramModel mem{geometry, static_cast<std::uint64_t>(GetParam())};
  EXPECT_TRUE(bist::run_session(ucode, mem).passed()) << alg.to_string();
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzEquivalence, ::testing::Range(1, 49));

class FuzzPfsm : public ::testing::TestWithParam<int> {};

// Property: any algorithm composed from SM components is mappable and the
// two-level controller replays it exactly.
TEST_P(FuzzPfsm, ComponentComposedAlgorithmsMap) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 7919u);
  std::uniform_int_distribution<int> num_elements(1, 6);
  std::uniform_int_distribution<int> comp_pick(0, 7);
  std::uniform_int_distribution<int> coin(0, 1);

  std::vector<march::MarchElement> elements;
  elements.push_back(march::any({coin(rng) ? march::w1() : march::w0()}));
  const int n = num_elements(rng);
  for (int i = 0; i < n; ++i) {
    march::MarchElement el;
    el.order = coin(rng) ? march::AddressOrder::Up
                         : march::AddressOrder::Down;
    el.ops = mbist_pfsm::realize(comp_pick(rng), coin(rng));
    elements.push_back(std::move(el));
  }
  // Reads in random component compositions may expect values the cells do
  // not hold — that is fine for stream equivalence (we do not run against
  // a memory here).
  const march::MarchAlgorithm alg{"fuzz-sm", std::move(elements)};
  ASSERT_TRUE(mbist_pfsm::is_mappable(alg)) << alg.to_string();

  const auto geometry = random_geometry(rng);
  mbist_pfsm::PfsmController pfsm{
      {.geometry = geometry, .buffer_depth = 16}};
  pfsm.load_algorithm(alg);
  EXPECT_EQ(bist::collect_ops(pfsm, 100'000'000),
            march::expand(alg, geometry))
      << alg.to_string();
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzPfsm, ::testing::Range(1, 25));

class FuzzTransparent : public ::testing::TestWithParam<int> {};

// Property: the transparent transform preserves arbitrary resident data on
// a fault-free memory, for any valid pause-free algorithm.
TEST_P(FuzzTransparent, ContentsPreserved) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 104729u);
  const auto alg = random_algorithm(rng, /*allow_pauses=*/false);
  const auto geometry = random_geometry(rng);
  ASSERT_GE(march::final_data_value(alg), 0);

  memsim::SramModel mem{geometry,
                        static_cast<std::uint64_t>(GetParam()) + 17};
  std::vector<memsim::Word> before(geometry.num_words());
  for (memsim::Address a = 0; a < geometry.num_words(); ++a)
    before[a] = mem.read(0, a);

  const auto r = diag::run_transparent(alg, mem);
  EXPECT_TRUE(r.passed) << alg.to_string();
  EXPECT_TRUE(r.contents_preserved) << alg.to_string();
  for (memsim::Address a = 0; a < geometry.num_words(); ++a)
    ASSERT_EQ(mem.read(0, a), before[a]) << alg.to_string();
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTransparent, ::testing::Range(1, 25));

// Property: a random single fault is either detected by all controllers or
// by none (verdict parity), for March C.
class FuzzFaultParity : public ::testing::TestWithParam<int> {};

TEST_P(FuzzFaultParity, VerdictsAgreeAcrossControllers) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 31u + 5u);
  const MemoryGeometry geometry{.address_bits = 4, .word_bits = 2,
                                .num_ports = 1};
  const auto classes = memsim::all_fault_classes();
  const auto cls = classes[rng() % classes.size()];
  const auto universe =
      march::make_fault_universe(cls, geometry, rng(), 8);
  const auto& fault = universe[rng() % universe.size()];

  const auto alg = march::march_c_plus_plus();
  mbist_ucode::MicrocodeController ucode{{.geometry = geometry}};
  ucode.load_algorithm(alg);
  mbist_hardwired::HardwiredController hw{alg, {.geometry = geometry}};

  memsim::FaultyMemory m1{geometry, 3};
  m1.add_fault(fault);
  memsim::FaultyMemory m2{geometry, 3};
  m2.add_fault(fault);

  EXPECT_EQ(bist::run_session(ucode, m1).passed(),
            bist::run_session(hw, m2).passed())
      << memsim::describe(fault);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzFaultParity, ::testing::Range(1, 33));

class FuzzLintMarch : public ::testing::TestWithParam<int> {};

// Property: linting any valid random algorithm never crashes, is
// deterministic, and reports errors only for the one defect the generator
// can produce (an algorithm with zero reads -> MA02).
TEST_P(FuzzLintMarch, ValidAlgorithmsLintWithoutSpuriousErrors) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 2671u);
  const auto alg = random_algorithm(rng, /*allow_pauses=*/true);
  ASSERT_TRUE(alg.validate().empty()) << alg.to_string();

  const auto report = lint::lint_march(alg);
  EXPECT_EQ(report, lint::lint_march(alg)) << alg.to_string();
  if (alg.reads_per_cell() == 0) {
    EXPECT_TRUE(report.has_code("MA02")) << alg.to_string();
  } else {
    EXPECT_FALSE(report.has_errors())
        << alg.to_string() << "\n" << lint::format_text(report);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzLintMarch, ::testing::Range(1, 49));

class FuzzLintUcode : public ::testing::TestWithParam<int> {};

// Property: the assembler's output for any valid random algorithm is clean
// microcode — the program linter finds no structural defects (modulo UC06
// when the algorithm itself never reads).
TEST_P(FuzzLintUcode, AssembledProgramsAreClean) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 4391u);
  const auto alg = random_algorithm(rng, /*allow_pauses=*/true);
  const auto r = mbist_ucode::assemble(alg);

  const auto report = lint::lint_ucode(r.program, {.storage_depth = 64});
  EXPECT_EQ(report, lint::lint_ucode(r.program, {.storage_depth = 64}));
  if (alg.reads_per_cell() == 0) {
    EXPECT_TRUE(report.has_code("UC06")) << r.program.listing();
  } else {
    EXPECT_FALSE(report.has_errors())
        << r.program.listing() << lint::format_text(report);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzLintUcode, ::testing::Range(1, 49));

class FuzzLintImages : public ::testing::TestWithParam<int> {};

// Property: the program linters accept *any* decodable image without
// crashing and produce identical reports on identical inputs — garbage in,
// diagnostics (not exceptions) out.
TEST_P(FuzzLintImages, RandomImagesLintDeterministically) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 6101u);
  std::uniform_int_distribution<int> len(1, 20);

  std::vector<std::uint16_t> ucode_words(static_cast<std::size_t>(len(rng)));
  for (auto& w : ucode_words) {
    w = static_cast<std::uint16_t>(rng() & 0x3ff);
    if (((w >> 5) & 0x3) == 3) w &= ~(1u << 5);  // avoid the reserved rw
  }
  const auto program = mbist_ucode::MicrocodeProgram::from_image(
      "fuzz", ucode_words);
  const auto report = lint::lint_ucode(program, {.storage_depth = 16});
  EXPECT_EQ(report, lint::lint_ucode(program, {.storage_depth = 16}));
  for (const auto& d : report.diagnostics())
    EXPECT_NE(lint::find_code(d.code), nullptr) << d.code;

  std::vector<std::uint16_t> pfsm_words(static_cast<std::size_t>(len(rng)));
  for (auto& w : pfsm_words) w = static_cast<std::uint16_t>(rng() & 0x1ff);
  const auto pfsm = mbist_pfsm::PfsmProgram::from_image("fuzz", pfsm_words);
  const auto preport = lint::lint_pfsm(pfsm, {.buffer_depth = 16});
  EXPECT_EQ(preport, lint::lint_pfsm(pfsm, {.buffer_depth = 16}));
  for (const auto& d : preport.diagnostics())
    EXPECT_NE(lint::find_code(d.code), nullptr) << d.code;
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzLintImages, ::testing::Range(1, 49));

class FuzzLintText : public ::testing::TestWithParam<int> {};

// Property: the lint driver never throws, whatever bytes it is handed —
// malformed input of every kind degrades to parse diagnostics.
TEST_P(FuzzLintText, ArbitraryTextNeverThrows) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 7699u);
  std::uniform_int_distribution<int> len(0, 200);
  // Mostly characters the grammars care about, plus arbitrary printables.
  const std::string alphabet =
      "updownanyrw01();, \n\t#;=\"softmempausassign0123456789abcdefxyz";
  std::string text(static_cast<std::size_t>(len(rng)), ' ');
  for (auto& c : text) c = alphabet[rng() % alphabet.size()];
  // Sometimes steer into the image paths.
  switch (rng() % 4) {
    case 0: text = "; pmbist microcode image v1\n" + text; break;
    case 1: text = "; pmbist pfsm image v1\n" + text; break;
    case 2: text = "soc fuzz\n" + text; break;
    default: break;
  }
  const auto report = lint::lint_text(text, "fuzz");
  EXPECT_EQ(report, lint::lint_text(text, "fuzz"));
  for (const auto& d : report.diagnostics())
    EXPECT_NE(lint::find_code(d.code), nullptr) << d.code;
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzLintText, ::testing::Range(1, 65));

class FuzzLifter : public ::testing::TestWithParam<int> {};

// Differential translation validation: for any valid random algorithm, the
// assembled image (both encodings) lifts back, and the equivalence verdict
// coincides with ground-truth stream equality under march::expand.
TEST_P(FuzzLifter, UcodeVerdictMatchesStreamEquality) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 9241u);
  const auto alg = random_algorithm(rng, /*allow_pauses=*/true);
  const MemoryGeometry probe{.address_bits = 3, .word_bits = 2,
                             .num_ports = 2};
  for (const bool symmetric : {true, false}) {
    const auto r = mbist_ucode::assemble(
        alg, {.symmetric_encoding = symmetric, .emit_loop_tail = true});
    lint::LiftOptions options;
    if (r.pause_ns != 0) options.pause_ns = r.pause_ns;
    const auto lifted = lint::lift_ucode(r.program, options);
    ASSERT_TRUE(lifted.ok)
        << lifted.why << "\n" << alg.to_string() << r.program.listing();
    const auto verdict = lint::check_equivalence(lifted, alg);
    const bool streams_equal =
        march::expand(lifted.algorithm, probe) == march::expand(alg, probe);
    EXPECT_TRUE(streams_equal) << alg.to_string();
    EXPECT_EQ(verdict.kind == lint::EquivKind::Equivalent, streams_equal)
        << verdict.detail << "\n" << alg.to_string();
  }
}

// Cross-check: lifting A's image and validating it against an unrelated
// random algorithm B must rule Equivalent exactly when the two expand to
// the same op stream (usually they do not, and the verdict carries a
// counterexample trace).
TEST_P(FuzzLifter, CrossVerdictMatchesStreamEquality) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 11587u);
  const auto a = random_algorithm(rng, /*allow_pauses=*/true);
  const auto b = random_algorithm(rng, /*allow_pauses=*/true);
  const auto r = mbist_ucode::assemble(a);
  lint::LiftOptions options;
  if (r.pause_ns != 0) options.pause_ns = r.pause_ns;
  const auto lifted = lint::lift_ucode(r.program, options);
  ASSERT_TRUE(lifted.ok) << lifted.why;

  const auto verdict = lint::check_equivalence(lifted, b);
  const MemoryGeometry probes[] = {
      {.address_bits = 2, .word_bits = 1, .num_ports = 1},
      {.address_bits = 3, .word_bits = 2, .num_ports = 2},
  };
  bool streams_equal = true;
  for (const auto& g : probes)
    streams_equal = streams_equal &&
                    march::expand(lifted.algorithm, g) ==
                        march::expand(lint::canonicalize(b), g);
  EXPECT_EQ(verdict.kind == lint::EquivKind::Equivalent, streams_equal)
      << verdict.detail << "\na: " << a.to_string()
      << "b: " << b.to_string();
  if (verdict.kind == lint::EquivKind::Mismatch) {
    EXPECT_FALSE(verdict.trace.empty());
  }
}

// pFSM side of the round trip, over random component compositions.
TEST_P(FuzzLifter, PfsmRoundTripHolds) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 13693u);
  std::uniform_int_distribution<int> num_elements(1, 6);
  std::uniform_int_distribution<int> comp_pick(0, 7);
  std::uniform_int_distribution<int> coin(0, 1);

  std::vector<march::MarchElement> elements;
  elements.push_back(march::any({coin(rng) ? march::w1() : march::w0()}));
  const int n = num_elements(rng);
  for (int i = 0; i < n; ++i) {
    march::MarchElement el;
    el.order = coin(rng) ? march::AddressOrder::Up
                         : march::AddressOrder::Down;
    el.ops = mbist_pfsm::realize(comp_pick(rng), coin(rng));
    elements.push_back(std::move(el));
  }
  const march::MarchAlgorithm alg{"fuzz-sm", std::move(elements)};
  ASSERT_TRUE(mbist_pfsm::is_mappable(alg)) << alg.to_string();

  const auto r = mbist_pfsm::compile(alg);
  const auto lifted = lint::lift_pfsm(r.program);
  ASSERT_TRUE(lifted.ok) << lifted.why << "\n" << alg.to_string();
  EXPECT_EQ(lint::check_equivalence(lifted, alg).kind,
            lint::EquivKind::Equivalent)
      << alg.to_string();
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzLifter, ::testing::Range(1, 49));

class FuzzLifterImages : public ::testing::TestWithParam<int> {};

// Property: the lifters never throw on arbitrary decodable images — they
// either lift or explain why not, deterministically.
TEST_P(FuzzLifterImages, RandomImagesLiftOrExplainDeterministically) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 15091u);
  std::uniform_int_distribution<int> len(1, 20);

  std::vector<std::uint16_t> ucode_words(static_cast<std::size_t>(len(rng)));
  for (auto& w : ucode_words) {
    w = static_cast<std::uint16_t>(rng() & 0x3ff);
    if (((w >> 5) & 0x3) == 3) w &= ~(1u << 5);  // avoid the reserved rw
  }
  const auto program = mbist_ucode::MicrocodeProgram::from_image(
      "fuzz", ucode_words);
  const auto a = lint::lift_ucode(program);
  const auto b = lint::lift_ucode(program);
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.why, b.why);
  EXPECT_EQ(a.code, b.code);
  if (a.ok) {
    // Note an empty element list is legitimate: an image that is only a
    // loop tail (or an immediate TERMINATE) applies no ops at all.
    EXPECT_EQ(a.algorithm.elements(), b.algorithm.elements());
  } else {
    EXPECT_FALSE(a.why.empty());
    EXPECT_NE(lint::find_code(a.code), nullptr) << a.code;
  }

  std::vector<std::uint16_t> pfsm_words(static_cast<std::size_t>(len(rng)));
  for (auto& w : pfsm_words) w = static_cast<std::uint16_t>(rng() & 0x1ff);
  const auto pfsm = mbist_pfsm::PfsmProgram::from_image("fuzz", pfsm_words);
  const auto p = lint::lift_pfsm(pfsm);
  const auto q = lint::lift_pfsm(pfsm);
  EXPECT_EQ(p.ok, q.ok);
  EXPECT_EQ(p.why, q.why);
  EXPECT_EQ(p.code, q.code);
  if (!p.ok) {
    EXPECT_FALSE(p.why.empty());
    EXPECT_NE(lint::find_code(p.code), nullptr) << p.code;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzLifterImages, ::testing::Range(1, 65));

class FuzzCfgDifferential : public ::testing::TestWithParam<int> {};

// Differential CFG fuzz: random *branchy* images — no-op strides, cell
// loops, Repeat windows whose replay enters a group mid-way, mid-program
// TERMINATEs leaving whole blocks unreachable — are analyzed and lifted,
// and whenever the lift succeeds with full loop structure the image is
// replayed on the cycle-accurate controller: the concrete op stream must
// equal march::expand of the recovered algorithm.  Rejections must be
// deterministic and carry a registered stable code; every image's CFG is
// reducible (no controller flow field can encode an irreducible region);
// and --fix removes exactly the unreachable blocks while preserving the
// lifted algorithm.
TEST_P(FuzzCfgDifferential, LiftedImagesReplayTheirAlgorithm) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 17389u);
  std::uniform_int_distribution<int> segments(1, 5);
  std::uniform_int_distribution<int> pick(0, 9);
  std::uniform_int_distribution<int> coin(0, 1);

  auto op_row = [&](unsigned flow) {
    unsigned w = flow << 7;
    w |= static_cast<unsigned>(coin(rng));        // addr_inc
    w |= (coin(rng) ? 1u : 2u) << 5;              // read or write
    if (coin(rng)) w |= 1u << 3;                  // data_inv
    if (coin(rng)) w |= 1u << 4;                  // cmp_inv
    if (coin(rng)) w |= 1u << 1;                  // addr_down
    return static_cast<std::uint16_t>(w);
  };

  std::vector<std::uint16_t> words;
  const int n = segments(rng);
  for (int s = 0; s < n; ++s) {
    switch (pick(rng)) {
      case 0:  // single-op sweep
        words.push_back(op_row(2));
        break;
      case 1:  // multi-op group closed by LOOP_CELL
        for (int i = 0; i <= coin(rng); ++i) words.push_back(op_row(0));
        words.push_back(op_row(1));
        break;
      case 2:  // no-op padding, sometimes address-stepping
        words.push_back(static_cast<std::uint16_t>(coin(rng)));
        break;
      case 3:  // no-op sweep
        words.push_back(coin(rng) ? 0x100 : 0x080);
        break;
      case 4:  // pause
        words.push_back(0x200);
        break;
      case 5: {  // Repeat with a random complement mask
        unsigned w = 0x180;
        if (coin(rng)) w |= 1u << 1;
        if (coin(rng)) w |= 1u << 3;
        if (coin(rng)) w |= 1u << 4;
        words.push_back(static_cast<std::uint16_t>(w));
        break;
      }
      case 6:  // mid-program TERMINATE: the rest becomes unreachable
        words.push_back(0x380);
        break;
      default:  // bare NEXT op rows (often draw LT04/LT05)
        words.push_back(op_row(0));
        break;
    }
  }
  if (coin(rng)) words.push_back(0x284);
  words.push_back(0x300);
  if (pick(rng) == 0) words.push_back(op_row(0));  // unreachable garbage
  const auto program =
      mbist_ucode::MicrocodeProgram::from_image("fuzz-cfg", words);

  // CFG invariants: reducible, and block reachability is consistent with
  // per-instruction reachability.
  const auto cfg = lint::build_ucode_cfg(program);
  EXPECT_TRUE(cfg.reducible()) << program.listing();
  for (const auto& block : cfg.blocks)
    for (int i = block.first; i <= block.last; ++i)
      EXPECT_EQ(cfg.reachable_insn[static_cast<std::size_t>(i)],
                block.reachable)
          << program.listing();

  const auto a = lint::lift_ucode(program);
  const auto b = lint::lift_ucode(program);
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.why, b.why);
  EXPECT_EQ(a.code, b.code);
  EXPECT_EQ(a.trace, b.trace);

  if (a.ok && a.full_structure()) {
    // The ground-truth check: the recovered algorithm expands to exactly
    // the op stream the hardware applies.
    const MemoryGeometry probes[] = {
        {.address_bits = 2, .word_bits = 1, .num_ports = 1},
        {.address_bits = 3, .word_bits = 2, .num_ports = 2},
    };
    for (const auto& g : probes) {
      mbist_ucode::MicrocodeController ctl{
          {.geometry = g, .storage_depth = 64}};
      ctl.load(program);
      EXPECT_EQ(bist::collect_ops(ctl, 100'000'000),
                march::expand(a.algorithm, g))
          << program.listing() << a.algorithm.to_string();
    }
  } else if (!a.ok) {
    EXPECT_FALSE(a.why.empty());
    ASSERT_NE(lint::find_code(a.code), nullptr)
        << "unregistered rejection code '" << a.code << "'";
  }

  // CFG-exact --fix: afterwards nothing is unreachable, and a liftable
  // image lifts to the identical algorithm.
  auto fixed = program;
  (void)lint::fix_ucode(fixed);
  const auto relint = lint::lint_ucode(fixed, {.storage_depth = 64});
  EXPECT_FALSE(relint.has_code("LT00")) << lint::format_text(relint);
  EXPECT_FALSE(relint.has_code("UC03")) << lint::format_text(relint);
  if (a.ok) {
    const auto after = lint::lift_ucode(fixed);
    ASSERT_TRUE(after.ok) << after.why << "\n" << fixed.listing();
    EXPECT_EQ(a.algorithm.elements(), after.algorithm.elements())
        << program.listing();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzCfgDifferential, ::testing::Range(1, 97));

// --- packed-kernel differential fuzz ----------------------------------

memsim::Fault random_fault(std::mt19937& rng, const MemoryGeometry& g) {
  auto cell = [&] {
    return memsim::BitRef{
        static_cast<memsim::Address>(rng() % g.num_words()),
        static_cast<int>(rng() % static_cast<unsigned>(g.word_bits))};
  };
  auto other_cell = [&](const memsim::BitRef& a) {
    memsim::BitRef b = cell();
    while (b == a) b = cell();
    return b;
  };
  auto coin = [&] { return rng() % 2 == 0; };
  switch (rng() % 13) {
    case 0: return memsim::StuckAtFault{cell(), coin()};
    case 1: return memsim::TransitionFault{cell(), coin()};
    case 2: {
      const auto a = cell();
      return memsim::InversionCouplingFault{a, other_cell(a), coin()};
    }
    case 3: {
      const auto a = cell();
      return memsim::IdempotentCouplingFault{a, other_cell(a), coin(),
                                             coin()};
    }
    case 4: {
      const auto a = cell();
      return memsim::StateCouplingFault{a, other_cell(a), coin(), coin()};
    }
    case 5: {
      // Decoder remap to 0 (no cell), 1 or 2 physical addresses —
      // including the nastiest shapes: self-maps and duplicates.
      memsim::AddressDecoderFault af;
      af.logical = static_cast<memsim::Address>(rng() % g.num_words());
      const unsigned n = rng() % 3;
      for (unsigned i = 0; i < n; ++i)
        af.physical.push_back(
            static_cast<memsim::Address>(rng() % g.num_words()));
      return af;
    }
    case 6: return memsim::StuckOpenFault{cell()};
    case 7:
      return memsim::DataRetentionFault{cell(), coin(),
                                        1 + rng() % 2'000'000};
    case 8: return memsim::IncorrectReadFault{cell()};
    case 9: return memsim::WriteDisturbFault{cell()};
    case 10: return memsim::ReadDestructiveFault{cell(), coin()};
    case 11: {
      memsim::NeighborhoodPatternFault f;
      f.base = cell();
      const unsigned n = 1 + rng() % 3;
      for (unsigned i = 0; i < n; ++i)
        f.neighbors.push_back(other_cell(f.base));
      f.pattern = rng() & ((1u << n) - 1);
      f.forced_value = coin();
      return f;
    }
    default:
      return memsim::PortReadFault{
          static_cast<int>(rng() % static_cast<unsigned>(g.num_ports)),
          static_cast<int>(rng() % static_cast<unsigned>(g.word_bits))};
  }
}

class FuzzKernel : public ::testing::TestWithParam<int> {};

// Property: for any valid random algorithm, geometry and fault population
// — every fault model, multi-fault groups, decoder remaps to anywhere —
// the packed PPSFP kernel produces records byte-identical to the scalar
// reference: same verdicts and same detecting-op positions.
TEST_P(FuzzKernel, PackedMatchesScalarOnRandomUniverses) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 17389u);
  const auto alg = random_algorithm(rng, /*allow_pauses=*/true);
  ASSERT_TRUE(alg.validate().empty()) << alg.to_string();
  const auto geometry = random_geometry(rng);
  const auto stream = march::expand(alg, geometry);

  // 97 groups: one full 64-lane pack plus a ragged 33-lane one.
  std::vector<march::FaultGroup> groups(97);
  for (auto& group : groups) {
    const unsigned n = 1 + rng() % 3;
    for (unsigned i = 0; i < n; ++i)
      group.push_back(random_fault(rng, geometry));
  }

  const std::uint64_t seed = rng();
  const auto scalar =
      march::CampaignRunner{{.jobs = 1,
                             .powerup_seed = seed,
                             .kernel = march::CampaignKernel::Scalar}}
          .run_groups(stream, geometry, groups);
  for (const int jobs : {1, 2}) {
    const auto packed =
        march::CampaignRunner{{.jobs = jobs,
                               .powerup_seed = seed,
                               .kernel = march::CampaignKernel::Packed}}
            .run_groups(stream, geometry, groups);
    ASSERT_EQ(scalar.records.size(), packed.records.size());
    for (std::size_t i = 0; i < scalar.records.size(); ++i) {
      ASSERT_EQ(scalar.records[i], packed.records[i])
          << "group " << i << " jobs=" << jobs << "\n"
          << alg.to_string();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzKernel, ::testing::Range(1, 65));

}  // namespace
