// Campaign engine: serial-vs-parallel equivalence, edge cases, the
// expanded-stream cache, the thread pool underneath, and the cheap
// FaultyMemory reset the workers rely on.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/cancel.h"
#include "common/thread_pool.h"
#include "march/campaign.h"
#include "march/coverage.h"
#include "march/library.h"

namespace {

using namespace pmbist;
using march::CampaignConfig;
using march::CampaignRunner;
using memsim::FaultClass;

constexpr memsim::MemoryGeometry kGeom{.address_bits = 5, .word_bits = 1,
                                       .num_ports = 1};

// --- serial vs parallel equivalence -----------------------------------

class CampaignEquivalence
    : public testing::TestWithParam<std::tuple<const char*, FaultClass>> {};

TEST_P(CampaignEquivalence, JobsDoNotChangeDetections) {
  const auto [name, cls] = GetParam();
  const auto alg = march::by_name(name);
  const auto universe = march::make_fault_universe(cls, kGeom, 99, 48);
  ASSERT_FALSE(universe.empty());

  const auto serial = march::run_campaign(alg, kGeom, universe, {.jobs = 1});
  EXPECT_EQ(serial.total(), static_cast<int>(universe.size()));
  for (const int jobs : {2, 8}) {
    const auto parallel =
        march::run_campaign(alg, kGeom, universe, {.jobs = jobs});
    EXPECT_EQ(serial.records, parallel.records)
        << name << " x " << memsim::fault_class_name(cls) << " jobs="
        << jobs;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AlgorithmsAndClasses, CampaignEquivalence,
    testing::Combine(testing::Values("MATS+", "March C", "March C++",
                                     "March SS"),
                     testing::Values(FaultClass::SAF, FaultClass::TF,
                                     FaultClass::CFid, FaultClass::AF,
                                     FaultClass::DRDF)));

TEST(Campaign, GroupUniverseEquivalence) {
  const auto alg = march::march_lr();
  const auto pairs = march::make_linked_cfid_universe(kGeom, 7, 32);
  std::vector<march::FaultGroup> groups;
  for (const auto& [a, b] : pairs)
    groups.push_back(march::FaultGroup{a, b});

  const auto stream = march::expand(alg, kGeom);
  const auto serial =
      CampaignRunner{{.jobs = 1}}.run_groups(stream, kGeom, groups);
  for (const int jobs : {2, 8}) {
    const auto parallel =
        CampaignRunner{CampaignConfig{.jobs = jobs}}.run_groups(stream, kGeom,
                                                                groups);
    EXPECT_EQ(serial.records, parallel.records) << "jobs=" << jobs;
  }
  // March LR owns linked CFid pairs.
  EXPECT_EQ(serial.detected(), serial.total());
}

TEST(Campaign, RecordsAreOrderedByFaultIndex) {
  const auto universe =
      march::make_fault_universe(FaultClass::SAF, kGeom, 3, 48);
  const auto result =
      march::run_campaign(march::march_c(), kGeom, universe, {.jobs = 8});
  ASSERT_EQ(result.total(), static_cast<int>(universe.size()));
  for (std::size_t i = 0; i < result.records.size(); ++i)
    EXPECT_EQ(result.records[i].fault_index, i);
}

// --- edge cases -------------------------------------------------------

TEST(Campaign, EmptyUniverse) {
  const std::vector<memsim::Fault> none;
  for (const int jobs : {0, 1, 8}) {
    const auto result =
        march::run_campaign(march::march_c(), kGeom, none, {.jobs = jobs});
    EXPECT_EQ(result.total(), 0);
    EXPECT_EQ(result.detected(), 0);
    EXPECT_TRUE(result.records.empty());
  }
}

TEST(Campaign, SingleFault) {
  const std::vector<memsim::Fault> one{
      memsim::StuckAtFault{{5, 0}, true}};
  for (const int jobs : {1, 8}) {
    const auto result =
        march::run_campaign(march::march_c(), kGeom, one, {.jobs = jobs});
    ASSERT_EQ(result.total(), 1);
    EXPECT_TRUE(result.records[0].detected);
    EXPECT_NE(result.records[0].first_failure_op,
              march::DetectionRecord::kNoFailure);
  }
}

TEST(Campaign, UndetectedFaultHasNoFailureOp) {
  // March C has no pause, so a DRF can never decay within the run.
  const std::vector<memsim::Fault> drf{
      memsim::DataRetentionFault{{3, 0}, true, 1}};
  const auto result = march::run_campaign(march::march_c(), kGeom, drf, {});
  ASSERT_EQ(result.total(), 1);
  EXPECT_FALSE(result.records[0].detected);
  EXPECT_EQ(result.records[0].first_failure_op,
            march::DetectionRecord::kNoFailure);
}

TEST(Campaign, MatchesLegacySerialEvaluation) {
  // The campaign-backed evaluate_coverage must agree with a hand-rolled
  // serial loop over run_stream (the pre-engine reference semantics).
  const march::CoverageOptions opts{.seed = 11,
                                    .max_instances_per_class = 32};
  for (const FaultClass cls : {FaultClass::SAF, FaultClass::SOF,
                               FaultClass::CFin}) {
    const auto universe = march::make_fault_universe(
        cls, kGeom, opts.seed, opts.max_instances_per_class);
    const auto stream = march::expand(march::march_y(), kGeom);
    int detected = 0;
    for (const auto& fault : universe) {
      memsim::FaultyMemory mem{kGeom, opts.seed};
      mem.add_fault(fault);
      if (!march::run_stream(stream, mem, 1).passed()) ++detected;
    }
    const auto cell =
        march::evaluate_coverage(march::march_y(), cls, kGeom, opts);
    EXPECT_EQ(cell.detected, detected)
        << memsim::fault_class_name(cls);
    EXPECT_EQ(cell.total, static_cast<int>(universe.size()));
  }
}

// --- stream cache -----------------------------------------------------

TEST(StreamCache, HitsAfterFirstExpansion) {
  march::StreamCache cache;

  const auto alg = march::march_u();
  const auto s1 = cache.get(alg, kGeom);
  const auto mid = cache.stats();
  EXPECT_EQ(mid.misses, 1u);
  EXPECT_EQ(mid.hits, 0u);

  const auto s2 = cache.get(alg, kGeom);
  const auto after = cache.stats();
  EXPECT_EQ(after.misses, 1u);
  EXPECT_EQ(after.hits, 1u);
  EXPECT_EQ(s1.get(), s2.get());  // the same shared immutable stream
  EXPECT_EQ(*s1, march::expand(alg, kGeom));
}

TEST(StreamCache, GeometryIsPartOfTheKey) {
  march::StreamCache cache;
  const auto alg = march::march_x();
  (void)cache.get(alg, kGeom);
  constexpr memsim::MemoryGeometry other{.address_bits = 4, .word_bits = 8,
                                         .num_ports = 1};
  (void)cache.get(alg, other);
  EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(StreamCache, NameIsNotPartOfTheKey) {
  march::StreamCache cache;
  (void)cache.get(march::march_c(), kGeom);
  // Same canonical text under a different name re-uses the entry.
  march::MarchAlgorithm renamed{"renamed", march::march_c().elements()};
  (void)cache.get(renamed, kGeom);
  const auto after = cache.stats();
  EXPECT_EQ(after.misses, 1u);
  EXPECT_EQ(after.hits, 1u);
}

TEST(StreamCache, TwoInstancesShareNothing) {
  // The reentrancy contract: caches are per-owner, so a second cache
  // re-expands and neither sees the other's counters.
  march::StreamCache a;
  march::StreamCache b;
  const auto sa = a.get(march::march_c(), kGeom);
  const auto sb = b.get(march::march_c(), kGeom);
  EXPECT_NE(sa.get(), sb.get());
  EXPECT_EQ(*sa, *sb);
  EXPECT_EQ(a.stats().misses, 1u);
  EXPECT_EQ(b.stats().misses, 1u);
  EXPECT_EQ(a.stats().hits, 0u);
}

TEST(StreamCache, LruEvictionUnderByteBudget) {
  // Budget for barely more than one March C expansion: inserting a second
  // algorithm must evict the least-recently-used entry, deterministically.
  const auto stream_bytes = [&](const march::MarchAlgorithm& alg) {
    return march::expand(alg, kGeom).size() * sizeof(march::MemOp);
  };
  const auto budget = stream_bytes(march::march_c()) +
                      stream_bytes(march::march_x()) / 2;
  march::StreamCache cache{budget};

  (void)cache.get(march::march_c(), kGeom);
  EXPECT_EQ(cache.stats().evictions, 0u);
  (void)cache.get(march::march_x(), kGeom);  // busts the budget
  const auto after = cache.stats();
  EXPECT_EQ(after.evictions, 1u);
  EXPECT_LE(after.bytes, budget);

  // March C was evicted (LRU), so asking again is a miss, not a hit.
  (void)cache.get(march::march_c(), kGeom);
  EXPECT_EQ(cache.stats().misses, 3u);
}

TEST(StreamCache, SoleEntryLargerThanBudgetIsKept) {
  // A stream bigger than the whole budget must still be served and must
  // not be evicted while it is the only entry (eviction keeps >= 1).
  march::StreamCache cache{1};
  const auto s = cache.get(march::march_c(), kGeom);
  ASSERT_NE(s, nullptr);
  const auto again = cache.get(march::march_c(), kGeom);
  EXPECT_EQ(s.get(), again.get());
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().evictions, 0u);
}

TEST(StreamCache, EvictedStreamStaysValidForHolders) {
  march::StreamCache cache{1};  // evicts on every second insert
  const auto held = cache.get(march::march_c(), kGeom);
  (void)cache.get(march::march_x(), kGeom);  // evicts March C
  // The shared_ptr we hold is unaffected by the eviction.
  EXPECT_EQ(*held, march::expand(march::march_c(), kGeom));
}

// --- FaultyMemory::reset ---------------------------------------------

TEST(FaultyMemoryReset, EquivalentToFreshConstruction) {
  constexpr memsim::MemoryGeometry g{.address_bits = 4, .word_bits = 8,
                                     .num_ports = 1};
  memsim::FaultyMemory reused{g, 123};
  // Dirty it thoroughly: fault, writes, time, reads.
  reused.add_fault(memsim::StuckAtFault{{2, 1}, true});
  reused.write(0, 2, 0xFF);
  reused.advance_time_ns(1'000'000);
  (void)reused.read(0, 2);

  reused.reset(456);
  memsim::FaultyMemory fresh{g, 456};
  EXPECT_TRUE(reused.faults().empty());
  for (memsim::Address a = 0; a < g.num_words(); ++a)
    EXPECT_EQ(reused.peek(a), fresh.peek(a)) << "addr " << a;
  for (memsim::Address a = 0; a < g.num_words(); ++a)
    EXPECT_EQ(reused.read(0, a), fresh.read(0, a)) << "addr " << a;
}

TEST(FaultyMemoryReset, ClearsEveryFaultKind) {
  constexpr memsim::MemoryGeometry g{.address_bits = 4, .word_bits = 2,
                                     .num_ports = 2};
  memsim::FaultyMemory mem{g, 9};
  mem.add_fault(memsim::StuckAtFault{{1, 0}, false});
  mem.add_fault(memsim::TransitionFault{{2, 0}, true});
  mem.add_fault(memsim::InversionCouplingFault{{3, 0}, {4, 0}, true});
  mem.add_fault(memsim::AddressDecoderFault{5, {}});
  mem.add_fault(memsim::PortReadFault{1, 0});
  mem.reset(9);
  // A reset memory behaves fault-free: write/read-back everywhere on
  // every port.
  for (memsim::Address a = 0; a < g.num_words(); ++a) {
    for (int port = 0; port < g.num_ports; ++port) {
      mem.write(port, a, a & 3u);
      EXPECT_EQ(mem.read(port, a), (a & 3u)) << "addr " << a;
    }
  }
}

// --- thread pool ------------------------------------------------------

TEST(ThreadPool, ResolveJobs) {
  EXPECT_GE(common::resolve_jobs(0), 1);
  EXPECT_EQ(common::resolve_jobs(3), 3);
  EXPECT_GE(common::resolve_jobs(-5), 1);
}

TEST(ThreadPool, ParallelShardsCoversEveryShardOnce) {
  for (const int jobs : {1, 2, 8}) {
    constexpr int kShards = 100;
    std::vector<std::atomic<int>> touched(kShards);
    common::parallel_shards(jobs, kShards,
                            [&](int s) { touched[s].fetch_add(1); });
    for (int s = 0; s < kShards; ++s)
      EXPECT_EQ(touched[s].load(), 1) << "shard " << s << " jobs " << jobs;
  }
}

TEST(ThreadPool, ParallelShardsPropagatesExceptions) {
  EXPECT_THROW(
      common::parallel_shards(4, 16,
                              [](int s) {
                                if (s == 7) throw std::runtime_error{"boom"};
                              }),
      std::runtime_error);
}

TEST(ThreadPool, SubmitRunsTasks) {
  common::ThreadPool pool{2};
  EXPECT_EQ(pool.size(), 2);
  std::atomic<int> sum{0};
  std::atomic<int> remaining{32};
  for (int i = 0; i < 32; ++i)
    pool.submit([&, i] {
      sum.fetch_add(i);
      remaining.fetch_sub(1);
    });
  while (remaining.load() != 0) std::this_thread::yield();
  EXPECT_EQ(sum.load(), 32 * 31 / 2);
}

TEST(Campaign, JobsZeroMeansHardwareAndStaysIdentical) {
  // jobs=0 resolves to hardware concurrency inside the engine (there is
  // no process-wide default any more); results stay identical to serial.
  const auto universe =
      march::make_fault_universe(FaultClass::TF, kGeom, 5, 24);
  const auto via_hardware =
      march::run_campaign(march::march_x(), kGeom, universe, {.jobs = 0});
  const auto explicit_serial =
      march::run_campaign(march::march_x(), kGeom, universe, {.jobs = 1});
  EXPECT_EQ(via_hardware.records, explicit_serial.records);
}

TEST(Campaign, CancellationThrowsAndLeavesEngineReusable) {
  const auto universe =
      march::make_fault_universe(FaultClass::SAF, kGeom, 5, 64);
  std::atomic<bool> cancel{true};  // pre-set: first shard poll throws
  EXPECT_THROW(march::run_campaign(march::march_c(), kGeom, universe,
                                   {.jobs = 2, .cancel = &cancel}),
               common::Cancelled);
  // A cancelled campaign must not poison the next one.
  cancel.store(false);
  const auto rerun = march::run_campaign(march::march_c(), kGeom, universe,
                                         {.jobs = 2, .cancel = &cancel});
  const auto reference =
      march::run_campaign(march::march_c(), kGeom, universe, {.jobs = 1});
  EXPECT_EQ(rerun.records, reference.records);
}

// --- scalar vs packed kernel equivalence ------------------------------
//
// The packed PPSFP kernel must be bit-identical to the scalar reference:
// same verdicts AND same detecting-op positions, for every fault class,
// every library algorithm, any jobs value, and ragged final lane-packs.

using march::CampaignKernel;

march::CampaignResult run_with(const march::MarchAlgorithm& alg,
                               const memsim::MemoryGeometry& geom,
                               std::span<const memsim::Fault> universe,
                               CampaignKernel kernel, int jobs = 1) {
  return march::run_campaign(alg, geom, universe,
                             {.jobs = jobs, .kernel = kernel});
}

TEST(Kernel, NameParseRoundTrip) {
  for (const auto k : {CampaignKernel::Auto, CampaignKernel::Scalar,
                       CampaignKernel::Packed})
    EXPECT_EQ(march::parse_kernel(march::kernel_name(k)), k);
  EXPECT_EQ(march::parse_kernel("vectorized"), std::nullopt);
  EXPECT_EQ(march::parse_kernel(""), std::nullopt);
}

TEST(Kernel, ResolveIsPureAndAutoMeansPacked) {
  // No process-wide kernel default exists: resolution is a pure function.
  EXPECT_EQ(march::resolve_kernel(CampaignKernel::Auto),
            CampaignKernel::Packed);
  EXPECT_EQ(march::resolve_kernel(CampaignKernel::Scalar),
            CampaignKernel::Scalar);
  EXPECT_EQ(march::resolve_kernel(CampaignKernel::Packed),
            CampaignKernel::Packed);
}

TEST(Kernel, FullLibraryAllClassesEquivalence) {
  // 96 instances per class: one full lane-pack plus a ragged 32-lane one.
  const memsim::MemoryGeometry geom{.address_bits = 4, .word_bits = 2,
                                    .num_ports = 1};
  for (const auto& alg : march::all_algorithms()) {
    for (const FaultClass cls : memsim::all_fault_classes()) {
      const auto universe = march::make_fault_universe(cls, geom, 17, 96);
      ASSERT_FALSE(universe.empty());
      const auto scalar =
          run_with(alg, geom, universe, CampaignKernel::Scalar);
      const auto packed =
          run_with(alg, geom, universe, CampaignKernel::Packed);
      EXPECT_EQ(scalar.records, packed.records)
          << alg.name() << " x " << memsim::fault_class_name(cls);
    }
  }
}

TEST(Kernel, PackedInvariantUnderJobs) {
  const auto universe =
      march::make_fault_universe(FaultClass::CFid, kGeom, 23, 96);
  const auto reference =
      run_with(march::march_c(), kGeom, universe, CampaignKernel::Scalar);
  for (const int jobs : {1, 2, 8}) {
    const auto packed = run_with(march::march_c(), kGeom, universe,
                                 CampaignKernel::Packed, jobs);
    EXPECT_EQ(reference.records, packed.records) << "jobs=" << jobs;
  }
}

TEST(Kernel, RaggedFinalPack) {
  // Universe sizes around the lane-pack boundary, including a single-lane
  // pack and an exactly-full pack.
  const memsim::MemoryGeometry geom{.address_bits = 6, .word_bits = 2,
                                    .num_ports = 1};
  const auto base = march::make_fault_universe(FaultClass::TF, geom, 31, 130);
  for (const std::size_t n : {std::size_t{1}, std::size_t{63},
                              std::size_t{64}, std::size_t{65},
                              std::size_t{130}}) {
    ASSERT_LE(n, base.size());
    const std::span<const memsim::Fault> universe{base.data(), n};
    const auto scalar =
        run_with(march::march_b(), geom, universe, CampaignKernel::Scalar);
    const auto packed =
        run_with(march::march_b(), geom, universe, CampaignKernel::Packed);
    EXPECT_EQ(scalar.records, packed.records) << "n=" << n;
  }
}

TEST(Kernel, GroupUniversesMatch) {
  // Linked CFid pairs plus heavier mixed groups: several faults of
  // different classes sharing one lane.
  const auto pairs = march::make_linked_cfid_universe(kGeom, 13, 70);
  std::vector<march::FaultGroup> groups;
  for (const auto& [a, b] : pairs) groups.push_back({a, b});
  groups.push_back({memsim::StuckAtFault{{1, 0}, true},
                    memsim::TransitionFault{{9, 0}, false},
                    memsim::ReadDestructiveFault{{12, 0}, true}});
  groups.push_back({memsim::AddressDecoderFault{4, {}},
                    memsim::ReadDestructiveFault{{20, 0}, true}});
  groups.push_back({memsim::AddressDecoderFault{6, {7, 8}},
                    memsim::InversionCouplingFault{{7, 0}, {25, 0}, true}});

  const auto stream = march::expand(march::march_lr(), kGeom);
  const auto scalar =
      CampaignRunner{{.jobs = 1, .kernel = CampaignKernel::Scalar}}
          .run_groups(stream, kGeom, groups);
  for (const int jobs : {1, 4}) {
    const auto packed =
        CampaignRunner{{.jobs = jobs, .kernel = CampaignKernel::Packed}}
            .run_groups(stream, kGeom, groups);
    EXPECT_EQ(scalar.records, packed.records) << "jobs=" << jobs;
  }
}

TEST(Kernel, ClassesOutsideTheStandardUniverse) {
  // PF, NPSF, intra-word coupling and pause-driven DRF don't appear in
  // make_fault_universe(all_fault_classes()); pin them explicitly.
  const memsim::MemoryGeometry geom{.address_bits = 3, .word_bits = 4,
                                    .num_ports = 2};
  std::vector<memsim::Fault> universe =
      march::make_intra_word_cf_universe(geom, 3, 40);
  universe.push_back(memsim::PortReadFault{1, 2});
  universe.push_back(memsim::PortReadFault{0, 0});
  universe.push_back(memsim::NeighborhoodPatternFault{
      {3, 1}, {{2, 1}, {4, 1}, {3, 0}}, 0b101, true});
  universe.push_back(memsim::DataRetentionFault{{5, 2}, false, 1});
  universe.push_back(memsim::DataRetentionFault{{5, 2}, true, 1});

  // March G carries pauses (DRF excitation); A++ has back-to-back reads.
  for (const char* name : {"March G", "March A++"}) {
    const auto alg = march::by_name(name);
    const auto scalar =
        run_with(alg, geom, universe, CampaignKernel::Scalar);
    const auto packed =
        run_with(alg, geom, universe, CampaignKernel::Packed);
    EXPECT_EQ(scalar.records, packed.records) << name;
  }
}

TEST(Kernel, EmptyDecoderLaneDivergesWeakCellTracking) {
  // Regression for the subtlest packed corner: a read through an
  // AF-to-nowhere lane completes no read, so that lane's back-to-back
  // (DRDF) tracking must lag the other lanes'.  Build a stream where the
  // divergence changes the verdict and check both kernels agree.
  const memsim::MemoryGeometry geom{.address_bits = 2, .word_bits = 1,
                                    .num_ports = 1};
  std::vector<march::FaultGroup> groups;
  // Lane 0: plain weak cell at 0 — detected by a read sandwiched around
  // an innocuous read of 1 only if the decoder maps 1 somewhere.
  groups.push_back({memsim::ReadDestructiveFault{{0, 0}, true}});
  // Lane 1: same weak cell, but address 1 reads nowhere, so r0 r1 r0 IS
  // back-to-back on cell 0 for this lane only.
  groups.push_back({memsim::ReadDestructiveFault{{0, 0}, true},
                    memsim::AddressDecoderFault{1, {}}});

  march::OpStream stream;
  stream.push_back(march::MemOp::write(0, 0, 0));
  stream.push_back(march::MemOp::write(0, 1, 0));
  stream.push_back(march::MemOp::read(0, 0, 0));
  stream.push_back(march::MemOp::read(0, 1, 0));  // lane 1: reads nowhere
  stream.push_back(march::MemOp::read(0, 0, 0));  // b2b only in lane 1

  const auto scalar =
      CampaignRunner{{.jobs = 1, .kernel = CampaignKernel::Scalar}}
          .run_groups(stream, geom, groups);
  const auto packed =
      CampaignRunner{{.jobs = 1, .kernel = CampaignKernel::Packed}}
          .run_groups(stream, geom, groups);
  EXPECT_EQ(scalar.records, packed.records);
  // Lane 1 must detect (on the AF read at op 3: expected 0 is actually
  // what nothing-read returns, so the weak-cell read at op 4 detects);
  // lane 0 must not — the intervening read of cell 1 resets its weak
  // cell.  If the packed kernel tracked last-read uniformly, lane 1
  // would wrongly mirror lane 0.
  EXPECT_FALSE(packed.records[0].detected);
  EXPECT_TRUE(packed.records[1].detected);
}

}  // namespace
