// Array-topology / address-scrambling tests: the scrambler is a bijection,
// the grid geometry is consistent, physical adjacency differs from logical
// adjacency under scrambling, and march tests detect physically adjacent
// coupling faults regardless of the mapping.

#include <gtest/gtest.h>

#include <set>

#include "march/coverage.h"
#include "march/library.h"
#include "memsim/topology.h"

namespace {

using namespace pmbist;
using memsim::Address;
using memsim::AddressScrambler;
using memsim::ArrayTopology;

TEST(Scrambler, IdentityMapsToSelf) {
  const auto s = AddressScrambler::identity(6);
  EXPECT_TRUE(s.is_identity());
  for (Address a = 0; a < 64; ++a) {
    EXPECT_EQ(s.to_physical(a), a);
    EXPECT_EQ(s.to_logical(a), a);
  }
}

class ScramblerProperty : public ::testing::TestWithParam<int> {};

TEST_P(ScramblerProperty, BijectionAndInverse) {
  const int bits = 3 + GetParam() % 6;
  const auto s = AddressScrambler::scrambled(
      bits, static_cast<std::uint64_t>(GetParam()));
  std::set<Address> images;
  const Address n = Address{1} << bits;
  for (Address a = 0; a < n; ++a) {
    const Address p = s.to_physical(a);
    EXPECT_LT(p, n);
    EXPECT_TRUE(images.insert(p).second) << "collision at " << a;
    EXPECT_EQ(s.to_logical(p), a);
  }
  EXPECT_EQ(images.size(), n);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScramblerProperty, ::testing::Range(1, 17));

TEST(Scrambler, NonTrivialForMostSeeds) {
  int nontrivial = 0;
  for (int seed = 1; seed <= 8; ++seed)
    if (!AddressScrambler::scrambled(8, static_cast<std::uint64_t>(seed))
             .is_identity())
      ++nontrivial;
  EXPECT_GE(nontrivial, 7);
}

TEST(Topology, GridGeometry) {
  const ArrayTopology topo{6, 2, AddressScrambler::identity(6)};
  EXPECT_EQ(topo.rows(), 4);
  EXPECT_EQ(topo.cols(), 16);
  const auto rc = topo.location(0x2A);  // 101010: row=10, col=1010
  EXPECT_EQ(rc.row, 0b10u);
  EXPECT_EQ(rc.col, 0b1010u);
  EXPECT_EQ(topo.at(rc), 0x2Au);
}

TEST(Topology, NeighborCountsAndSymmetry) {
  const ArrayTopology topo{6, 3,
                           AddressScrambler::scrambled(6, 5)};
  for (Address a = 0; a < 64; ++a) {
    const auto nbrs = topo.neighbors(a);
    EXPECT_GE(nbrs.size(), 2u);  // corners
    EXPECT_LE(nbrs.size(), 4u);
    for (Address b : nbrs) {
      EXPECT_NE(a, b);
      const auto back = topo.neighbors(b);
      EXPECT_NE(std::find(back.begin(), back.end(), a), back.end())
          << a << " <-> " << b;
    }
  }
}

TEST(Topology, ScramblingChangesAdjacency) {
  const ArrayTopology flat{6, 3, AddressScrambler::identity(6)};
  const ArrayTopology scrambled{6, 3, AddressScrambler::scrambled(6, 9)};
  int differing = 0;
  for (Address a = 0; a < 64; ++a) {
    auto n1 = flat.neighbors(a);
    auto n2 = scrambled.neighbors(a);
    std::sort(n1.begin(), n1.end());
    std::sort(n2.begin(), n2.end());
    if (n1 != n2) ++differing;
  }
  EXPECT_GT(differing, 32);  // most neighborhoods move
}

// The payoff: march tests exercise every cell pair in both orders, so
// physically adjacent coupling faults are detected no matter how the
// decoder scrambles addresses.
TEST(Topology, MarchCDetectsAdjacentCouplingUnderAnyScrambling) {
  const memsim::MemoryGeometry g{.address_bits = 5, .word_bits = 1,
                                 .num_ports = 1};
  const auto stream = march::expand(march::march_c(), g);
  for (std::uint64_t seed : {1ull, 7ull, 42ull}) {
    const ArrayTopology topo{
        5, 2, AddressScrambler::scrambled(5, seed)};
    for (const auto& fault :
         memsim::adjacent_coupling_faults(topo, 0, seed, 24)) {
      memsim::FaultyMemory mem{g, 13};
      mem.add_fault(fault);
      EXPECT_FALSE(march::run_stream(stream, mem, 1).passed())
          << memsim::describe(fault) << " seed " << seed;
    }
  }
}

TEST(Topology, AdjacentFaultGeneratorRespectsTopology) {
  const ArrayTopology topo{5, 2, AddressScrambler::scrambled(5, 3)};
  for (const auto& fault : memsim::adjacent_coupling_faults(topo, 0, 3, 32)) {
    const auto& cf = std::get<memsim::InversionCouplingFault>(fault);
    const auto nbrs = topo.neighbors(cf.aggressor.addr);
    EXPECT_NE(std::find(nbrs.begin(), nbrs.end(), cf.victim.addr),
              nbrs.end())
        << memsim::describe(fault);
  }
}

}  // namespace
