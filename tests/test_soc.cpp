// SoC orchestration: chip catalog, chip-file parsing, plan validation, and
// the scheduler's contracts — share-group mutual exclusion, power-budget
// compliance, exact durations, and jobs-independent (bit-identical) results.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "soc/chip.h"
#include "soc/chip_json.h"
#include "soc/scheduler.h"

namespace {

using namespace pmbist;

// --- description ------------------------------------------------------

TEST(SocDescription, RejectsBadInstances) {
  soc::SocDescription chip{"t"};
  EXPECT_THROW(chip.add({}), soc::SocError);  // empty name
  soc::MemoryInstance m;
  m.name = "a";
  m.geometry = {.address_bits = 0, .word_bits = 1, .num_ports = 1};
  EXPECT_THROW(chip.add(m), soc::SocError);  // degenerate geometry
  m.geometry = {.address_bits = 4, .word_bits = 1, .num_ports = 1};
  m.row_bits = 4;  // must be < address_bits
  EXPECT_THROW(chip.add(m), soc::SocError);
  m.row_bits = 2;
  chip.add(m);
  EXPECT_THROW(chip.add(m), soc::SocError);  // duplicate name
  EXPECT_NE(chip.find("a"), nullptr);
  EXPECT_EQ(chip.find("b"), nullptr);
  EXPECT_THROW(chip.add_fault("b", memsim::StuckAtFault{{0, 0}, true}),
               soc::SocError);
}

TEST(SocDescription, DemoChipShape) {
  const auto chip = soc::demo_soc();
  EXPECT_GE(chip.memories().size(), 8u);  // acceptance: >= 8 instances
  int with_defects = 0, repairable = 0;
  for (const auto& m : chip.memories()) {
    if (!m.faults.empty()) ++with_defects;
    if (m.repair.any()) ++repairable;
  }
  EXPECT_GE(with_defects, 2);
  EXPECT_GE(repairable, 2);
}

// --- plan validation --------------------------------------------------

soc::TestAssignment task(std::string mem, std::string alg,
                         soc::ControllerKind kind, std::string group = {},
                         double weight = 0.0) {
  soc::TestAssignment a;
  a.memory = std::move(mem);
  a.algorithm = std::move(alg);
  a.controller = kind;
  a.share_group = std::move(group);
  a.power_weight = weight;
  return a;
}

TEST(SocPlan, ValidateCatchesEveryMistake) {
  const auto chip = soc::demo_soc();

  soc::TestPlan unknown_mem;
  unknown_mem.assign(task("nope", "March C", soc::ControllerKind::Ucode));
  EXPECT_THROW(unknown_mem.validate(chip), soc::SocError);

  soc::TestPlan dup;
  dup.assign(task("cpu_l2", "March C", soc::ControllerKind::Ucode));
  EXPECT_THROW(
      dup.assign(task("cpu_l2", "MATS+", soc::ControllerKind::Ucode)),
      soc::SocError);

  soc::TestPlan bad_alg;
  bad_alg.assign(task("cpu_l2", "March Zeta", soc::ControllerKind::Ucode));
  EXPECT_THROW(bad_alg.validate(chip), soc::SocError);

  soc::TestPlan unmappable;  // March B does not map onto the pFSM SMs
  unmappable.assign(task("cpu_l2", "March B", soc::ControllerKind::Pfsm));
  EXPECT_THROW(unmappable.validate(chip), soc::SocError);

  soc::TestPlan hardwired_shared;  // a hardwired engine cannot be retargeted
  hardwired_shared.assign(
      task("cpu_l2", "March C", soc::ControllerKind::Hardwired, "grp"));
  EXPECT_THROW(hardwired_shared.validate(chip), soc::SocError);

  soc::TestPlan tight;  // budget below a single session's weight
  tight.assign(task("cpu_l2", "March C", soc::ControllerKind::Ucode));
  tight.set_power_budget(1.0);
  EXPECT_THROW(tight.validate(chip), soc::SocError);

  soc::TestPlan negative;
  negative.assign(task("cpu_l2", "March C", soc::ControllerKind::Ucode));
  negative.set_power_budget(-2.0);
  EXPECT_THROW(negative.validate(chip), soc::SocError);

  EXPECT_NO_THROW(soc::demo_plan().validate(chip));
}

TEST(SocPlan, DefaultWeightIsWordPlusAddressBits) {
  const auto chip = soc::demo_soc();
  const soc::TestPlan plan;
  const auto* l2 = chip.find("cpu_l2");
  ASSERT_NE(l2, nullptr);
  EXPECT_DOUBLE_EQ(
      plan.effective_weight(task("cpu_l2", "March C",
                                 soc::ControllerKind::Ucode),
                            *l2),
      10 + 8);
  EXPECT_DOUBLE_EQ(
      plan.effective_weight(
          task("cpu_l2", "March C", soc::ControllerKind::Ucode, {}, 3.5),
          *l2),
      3.5);
}

// --- chip files -------------------------------------------------------

TEST(ChipFile, ParsesMinimalChip) {
  const auto chip = soc::parse_chip_text(
      "soc tiny\n"
      "mem a addr_bits=4\n"
      "assign a \"MATS\" ucode\n");
  EXPECT_EQ(chip.description.name(), "tiny");
  ASSERT_EQ(chip.description.memories().size(), 1u);
  const auto& m = chip.description.memories()[0];
  EXPECT_EQ(m.geometry.word_bits, 1);  // defaults
  EXPECT_EQ(m.geometry.num_ports, 1);
  EXPECT_EQ(m.powerup_seed, 1u);
  EXPECT_EQ(m.row_bits, -1);
  ASSERT_EQ(chip.plan.assignments().size(), 1u);
  EXPECT_EQ(chip.plan.assignments()[0].algorithm, "MATS");
}

TEST(ChipFile, ReportsLineNumbers) {
  const auto expect_line = [](const std::string& text, const char* needle) {
    try {
      (void)soc::parse_chip_text(text);
      FAIL() << "expected ChipError for: " << text;
    } catch (const soc::ChipError& e) {
      EXPECT_NE(std::string{e.what()}.find(needle), std::string::npos)
          << e.what();
    }
  };
  expect_line("soc t\nbogus x\n", "line 2");
  expect_line("soc t\nmem a addr_bits=zap\n", "line 2");
  expect_line("soc t\n\nmem a addr_bits=4 addr_bits=5\n", "duplicate key");
  expect_line("soc t\nassign a \"MATS\n", "unterminated quote");
  expect_line("fault a SAF cell=0:0 value=1\n", "unknown memory");
  expect_line("soc t\nmem a addr_bits=4\nfault a SAF cell=99:0 value=1\n",
              "outside the geometry");
  expect_line("soc t\nmem a addr_bits=4\nassign a \"MATS\" warpdrive\n",
              "line 3");
  // Validation failures surface as ChipError too (plan vs description).
  expect_line("soc t\nmem a addr_bits=4\nassign b \"MATS\" ucode\n", "b");
}

TEST(ChipFile, SampleFaultDrawsFromDeterministicUniverse) {
  const char* text =
      "soc t\n"
      "mem a addr_bits=5\n"
      "fault a sample class=CFid seed=7 index=3\n"
      "assign a \"March C\" ucode\n";
  const auto once = soc::parse_chip_text(text);
  const auto again = soc::parse_chip_text(text);
  ASSERT_EQ(once.description.memories()[0].faults.size(), 1u);
  EXPECT_EQ(once.description, again.description);
}

TEST(ChipFile, RoundTripsTheDemoChip) {
  const auto chip = soc::demo_soc();
  const auto plan = soc::demo_plan();
  const auto text = soc::to_chip_text(chip, plan);
  const auto parsed = soc::parse_chip_text(text);
  EXPECT_EQ(parsed.description, chip);
  EXPECT_EQ(parsed.plan, plan);
  // And the round-trip is a fixed point.
  EXPECT_EQ(soc::to_chip_text(parsed.description, parsed.plan), text);
}

// --- the JSON mirror (soc/chip_json.h) --------------------------------

TEST(ChipJson, RoundTripsTheDemoChip) {
  const auto chip = soc::demo_soc();
  const auto plan = soc::demo_plan();
  const auto text = soc::serialize_chip_json(chip, plan);
  const auto parsed = soc::parse_chip_json(text);
  EXPECT_EQ(parsed.description, chip);
  EXPECT_EQ(parsed.plan, plan);
  // The serialization is a fixed point of the round-trip.
  EXPECT_EQ(soc::serialize_chip_json(parsed.description, parsed.plan), text);
}

TEST(ChipJson, AgreesWithTheTextFormat) {
  // Both formats funnel into the same validated back end: serializing a
  // chip both ways and re-parsing yields equal ChipFiles.
  const auto chip = soc::demo_soc();
  const auto plan = soc::demo_plan();
  const auto from_text = soc::parse_chip_text(soc::to_chip_text(chip, plan));
  const auto from_json =
      soc::parse_chip_json(soc::serialize_chip_json(chip, plan));
  EXPECT_EQ(from_text.description, from_json.description);
  EXPECT_EQ(from_text.plan, from_json.plan);
}

TEST(ChipJson, ParseChipSniffsTheFormat) {
  const auto chip = soc::demo_soc();
  const auto plan = soc::demo_plan();
  const auto as_json = soc::parse_chip(soc::serialize_chip_json(chip, plan));
  const auto as_text = soc::parse_chip(soc::to_chip_text(chip, plan));
  EXPECT_EQ(as_json.description, as_text.description);
  EXPECT_EQ(as_json.plan, as_text.plan);
}

TEST(ChipJson, RejectsMalformedPayloads) {
  EXPECT_THROW((void)soc::parse_chip_json("{not json"), soc::ChipError);
  EXPECT_THROW((void)soc::parse_chip_json("[]"), soc::ChipError);
  EXPECT_THROW((void)soc::parse_chip_json(R"({"soc":"t","bogus":1})"),
               soc::ChipError);
  EXPECT_THROW(
      (void)soc::parse_chip_json(
          R"({"soc":"t","memories":[{"name":"a","addr_bits":4,"frob":1}]})"),
      soc::ChipError);
}

TEST(ChipFile, LoadRejectsMissingFile) {
  EXPECT_THROW((void)soc::load_chip_file("/nonexistent/x.chip"),
               soc::ChipError);
}

// --- scheduler --------------------------------------------------------

double power_at(const std::vector<soc::ScheduledSession>& schedule,
                std::uint64_t t) {
  double sum = 0.0;
  for (const auto& s : schedule)
    if (s.start_cycle <= t && t < s.end_cycle()) sum += s.power_weight;
  return sum;
}

TEST(SocScheduler, ScheduleRespectsEveryConstraint) {
  const auto chip = soc::demo_soc();
  const auto plan = soc::demo_plan();
  const auto schedule = soc::Scheduler{}.compute_schedule(chip, plan);
  ASSERT_EQ(schedule.size(), plan.assignments().size());

  const double budget = plan.power().budget;
  ASSERT_GT(budget, 0.0);
  for (const auto& s : schedule) {
    // Acceptance: summed weight never exceeds the budget at any instant
    // (power is piecewise-constant, so session starts cover all instants).
    EXPECT_LE(power_at(schedule, s.start_cycle), budget + 1e-9) << s.memory;
  }
  // Acceptance: two sessions of one share group never overlap.
  for (const auto& a : schedule)
    for (const auto& b : schedule) {
      if (&a == &b || a.share_group.empty() ||
          a.share_group != b.share_group)
        continue;
      const bool overlap =
          a.start_cycle < b.end_cycle() && b.start_cycle < a.end_cycle();
      EXPECT_FALSE(overlap) << a.memory << " and " << b.memory
                            << " overlap in group " << a.share_group;
    }
  // Output ordering: by start cycle, then name.
  EXPECT_TRUE(std::is_sorted(
      schedule.begin(), schedule.end(), [](const auto& x, const auto& y) {
        return std::tie(x.start_cycle, x.memory) <
               std::tie(y.start_cycle, y.memory);
      }));
  // Programmable controllers pay a reload; hardwired engines do not.
  for (const auto& s : schedule) {
    if (s.controller == soc::ControllerKind::Hardwired)
      EXPECT_EQ(s.load_cycles, 0u) << s.memory;
    else
      EXPECT_GT(s.load_cycles, 0u) << s.memory;
  }
}

TEST(SocScheduler, RunMatchesScheduleAndCycleCountsExactly) {
  const auto chip = soc::demo_soc();
  const auto plan = soc::demo_plan();
  const soc::Scheduler scheduler{{.jobs = 2}};
  const auto result = scheduler.run(chip, plan);
  EXPECT_EQ(result.schedule, scheduler.compute_schedule(chip, plan));

  std::uint64_t max_end = 0;
  for (const auto& s : result.schedule) {
    max_end = std::max(max_end, s.end_cycle());
    // The modeled test duration is EXACT: the executed session took
    // precisely the scheduled cycle count.
    const auto it = std::find_if(
        result.instances.begin(), result.instances.end(),
        [&](const auto& r) { return r.memory == s.memory; });
    ASSERT_NE(it, result.instances.end());
    EXPECT_TRUE(it->session.completed());
    EXPECT_EQ(it->session.cycles, s.test_cycles) << s.memory;
  }
  EXPECT_EQ(result.makespan_cycles, max_end);
  double peak = 0.0;
  for (const auto& s : result.schedule)
    peak = std::max(peak, power_at(result.schedule, s.start_cycle));
  EXPECT_DOUBLE_EQ(result.peak_power, peak);
}

TEST(SocScheduler, ResultsAreIdenticalForAnyWorkerCount) {
  const auto chip = soc::demo_soc();
  const auto plan = soc::demo_plan();
  // Acceptance: bit-identical SocResult (instances, schedule, makespan,
  // peak power — operator== covers them all) for jobs in {1, 2, 8}.
  const auto serial = soc::run_soc(chip, plan, {.jobs = 1});
  EXPECT_EQ(serial, soc::run_soc(chip, plan, {.jobs = 2}));
  EXPECT_EQ(serial, soc::run_soc(chip, plan, {.jobs = 8}));
}

TEST(SocScheduler, DetectsRepairsAndRetests) {
  const auto chip = soc::demo_soc();
  const auto result = soc::run_soc(chip, soc::demo_plan(), {.jobs = 2});
  ASSERT_EQ(result.instances.size(), chip.memories().size());
  int repaired = 0;
  for (const auto& r : result.instances) {
    const auto* m = chip.find(r.memory);
    ASSERT_NE(m, nullptr);
    if (m->faults.empty()) {
      EXPECT_TRUE(r.session.passed()) << r.memory;
      EXPECT_FALSE(r.repair.has_value()) << r.memory;
    } else {
      // Every demo defect is detectable by its assigned March test.
      EXPECT_FALSE(r.session.passed()) << r.memory;
      ASSERT_TRUE(r.repair.has_value()) << r.memory;
      EXPECT_TRUE(r.repair->repairable) << r.memory;
      EXPECT_TRUE(r.repair->retest_passed) << r.memory;
      ++repaired;
    }
  }
  EXPECT_GE(repaired, 2);
  EXPECT_TRUE(result.all_healthy());
  EXPECT_EQ(result.healthy_count(),
            static_cast<int>(result.instances.size()));
}

TEST(SocScheduler, FoldedRetestsMatchImmediateRetestVerdicts) {
  const auto chip = soc::demo_soc();
  const auto plan = soc::demo_plan();
  const auto immediate = soc::run_soc(chip, plan, {.jobs = 2});
  const auto folded =
      soc::run_soc(chip, plan, {.jobs = 2, .fold_retests = true});

  // Same per-instance verdicts either way: folding only moves WHEN the
  // retest runs, never what it concludes.
  ASSERT_EQ(folded.instances.size(), immediate.instances.size());
  for (std::size_t i = 0; i < folded.instances.size(); ++i)
    EXPECT_EQ(folded.instances[i], immediate.instances[i])
        << folded.instances[i].memory;
  EXPECT_TRUE(folded.all_healthy());

  // The folded retests surface as scheduled second-pass sessions that
  // start only after the whole first pass has drained.
  std::uint64_t first_pass_end = 0;
  for (const auto& s : folded.schedule)
    if (!s.retest) first_pass_end = std::max(first_pass_end, s.end_cycle());
  int retests = 0;
  for (const auto& s : folded.schedule) {
    if (!s.retest) continue;
    ++retests;
    EXPECT_GE(s.start_cycle, first_pass_end) << s.memory;
  }
  EXPECT_GE(retests, 2);  // both demo defects are detected and repaired
  EXPECT_GE(folded.makespan_cycles, immediate.makespan_cycles);
  for (const auto& s : immediate.schedule)
    EXPECT_FALSE(s.retest) << s.memory;  // default mode stays as it was

  // Determinism pin: bit-identical folded results for any worker count.
  const auto serial = soc::run_soc(chip, plan, {.jobs = 1,
                                                .fold_retests = true});
  EXPECT_EQ(serial, folded);
  EXPECT_EQ(serial, soc::run_soc(chip, plan, {.jobs = 8,
                                              .fold_retests = true}));
}

TEST(SocScheduler, UnrepairableWithoutSpares) {
  auto chip = soc::demo_soc();
  soc::TestPlan plan;
  plan.assign(task("gpu_tile", "March C", soc::ControllerKind::Ucode));
  chip.add_fault("gpu_tile", memsim::StuckAtFault{{3, 1}, true});
  const auto result = soc::run_soc(chip, plan, {.jobs = 1});
  ASSERT_EQ(result.instances.size(), 1u);
  EXPECT_FALSE(result.instances[0].session.passed());
  EXPECT_FALSE(result.instances[0].repair.has_value());  // no spares
  EXPECT_FALSE(result.all_healthy());
}

TEST(SocScheduler, TighterBudgetNeverShortensTheChipTest) {
  const auto chip = soc::demo_soc();
  auto plan = soc::demo_plan();
  const soc::Scheduler scheduler{};
  std::uint64_t previous = 0;
  // 0 = unconstrained; then progressively tighter budgets.
  for (const double budget : {0.0, 96.0, 48.0, 30.0, 23.0}) {
    plan.set_power_budget(budget);
    const auto schedule = scheduler.compute_schedule(chip, plan);
    std::uint64_t makespan = 0;
    for (const auto& s : schedule)
      makespan = std::max(makespan, s.end_cycle());
    EXPECT_GE(makespan, previous) << "budget " << budget;
    previous = makespan;
  }
  // The tightest budget above admits only one heavy session at a time, so
  // the chip test degenerates towards the serial sum.
  std::uint64_t serial_sum = 0;
  plan.set_power_budget(0.0);
  for (const auto& s : scheduler.compute_schedule(chip, plan))
    serial_sum += s.duration();
  EXPECT_LT(previous, serial_sum);  // groups of light sessions still overlap
}

TEST(SocScheduler, UnconstrainedScheduleParallelizesAcrossControllers) {
  const auto chip = soc::demo_soc();
  auto plan = soc::demo_plan();
  plan.set_power_budget(0.0);
  const auto schedule = soc::Scheduler{}.compute_schedule(chip, plan);
  std::uint64_t makespan = 0, total = 0;
  for (const auto& s : schedule) {
    makespan = std::max(makespan, s.end_cycle());
    total += s.duration();
  }
  EXPECT_LT(makespan, total);  // strictly better than one-at-a-time
}

}  // namespace
