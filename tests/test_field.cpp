// In-field online test manager: mission-profile parsing, the segmenting
// engine's exact-cost contract, and the headline acceptance bar — N
// checkpointed segments produce bit-identical fault verdicts and
// signatures to one uninterrupted run, for every library algorithm,
// across window-shape sweeps and fuzzed profiles.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "bist/misr.h"
#include "bist/session.h"
#include "diag/transparent.h"
#include "field/manager.h"
#include "field/profile.h"
#include "field/segment.h"
#include "march/coverage.h"
#include "march/library.h"
#include "memsim/faulty_memory.h"
#include "soc/scheduler.h"

namespace {

using namespace pmbist;

// --- profiles ---------------------------------------------------------

TEST(MissionProfile, ParsesMinimalProfile) {
  const auto p = field::parse_profile_text(
      "profile night_shift\n"
      "horizon 50000\n"
      "bus_budget 3\n"
      "window ram0 start=0 end=1000\n"
      "window ram0 start=2000 end=3000\n"
      "window ram1 start=500 end=1500\n");
  EXPECT_EQ(p.name, "night_shift");
  EXPECT_EQ(p.horizon, 50000u);
  EXPECT_EQ(p.bus_budget, 3u);
  ASSERT_NE(p.find("ram0"), nullptr);
  ASSERT_EQ(p.find("ram0")->windows.size(), 2u);
  EXPECT_EQ(p.find("ram0")->windows[1], (field::IdleWindow{2000, 3000}));
  EXPECT_EQ(p.find("nope"), nullptr);
  EXPECT_EQ(p.effective_horizon(), 50000u);
}

TEST(MissionProfile, HorizonDefaultsToLastWindowEnd) {
  const auto p = field::parse_profile_text(
      "window a start=0 end=100\n"
      "window b start=50 end=7500\n");
  EXPECT_EQ(p.horizon, 0u);
  EXPECT_EQ(p.effective_horizon(), 7500u);
}

TEST(MissionProfile, ReportsLineNumbers) {
  const auto expect_line = [](const std::string& text, const char* needle) {
    try {
      (void)field::parse_profile_text(text);
      FAIL() << "expected ProfileError for: " << text;
    } catch (const field::ProfileError& e) {
      EXPECT_NE(std::string{e.what()}.find(needle), std::string::npos)
          << e.what();
    }
  };
  expect_line("profile a\nbogus x\n", "line 2");
  expect_line("profile a\nwindow m start=zap end=9\n", "bad number");
  expect_line("profile a\nwindow m start=5 stop=9\n", "missing end=");
  expect_line("profile a\nwindow m start=9 end=5\n", "before start");
  expect_line("profile a\nprofile b\n", "duplicate profile");
  expect_line("window m start=1 end=2 start=3\n", "duplicate key");
  expect_line("horizon nope\n", "bad horizon");
}

TEST(MissionProfile, ValidateCatchesEveryMistake) {
  field::MissionProfile overlap;
  overlap.add_window("m", {0, 100}).add_window("m", {50, 150});
  EXPECT_THROW(overlap.validate(), field::FieldError);

  field::MissionProfile empty_window;
  empty_window.add_window("m", {10, 10});
  EXPECT_THROW(empty_window.validate(), field::FieldError);

  field::MissionProfile no_bus;
  no_bus.bus_budget = 0;
  no_bus.add_window("m", {0, 100});
  EXPECT_THROW(no_bus.validate(), field::FieldError);

  field::MissionProfile unknown;
  unknown.add_window("no_such_mem", {0, 100});
  EXPECT_NO_THROW(unknown.validate());  // standalone: names unchecked
  EXPECT_THROW(unknown.validate(soc::demo_soc()), field::FieldError);

  // Adjacent windows are fine ([a,b) then [b,c)), and so is the demo.
  field::MissionProfile adjacent;
  adjacent.add_window("m", {0, 100}).add_window("m", {100, 200});
  EXPECT_NO_THROW(adjacent.validate());
  EXPECT_NO_THROW(field::demo_profile().validate(soc::demo_soc()));
}

TEST(MissionProfile, RoundTripsThroughText) {
  const auto p = field::demo_profile();
  const auto text = field::to_profile_text(p);
  const auto parsed = field::parse_profile_text(text);
  EXPECT_EQ(parsed, p);
  EXPECT_EQ(field::to_profile_text(parsed), text);  // fixed point
}

TEST(MissionProfile, LoadRejectsMissingFile) {
  EXPECT_THROW((void)field::load_profile_file("/nonexistent/x.profile"),
               field::ProfileError);
}

// --- segmenting engine ------------------------------------------------

TEST(SegmentPlan, CutsAreContiguousAndCostsAreExact) {
  const memsim::MemoryGeometry g{.address_bits = 5, .word_bits = 8,
                                 .num_ports = 2};
  for (const auto& alg : march::all_algorithms()) {
    for (const auto kind :
         {soc::ControllerKind::Ucode, soc::ControllerKind::Hardwired}) {
      const auto plan = field::segment_algorithm(alg, g, kind);
      ASSERT_FALSE(plan.segments.empty()) << alg.name();
      std::uint64_t sum = 0;
      std::size_t cursor = 0;
      for (const auto& s : plan.segments) {
        EXPECT_EQ(s.op_begin, cursor) << alg.name();
        EXPECT_LT(s.op_begin, s.op_end) << alg.name();
        cursor = s.op_end;
        sum += s.cycles;
      }
      // Acceptance: per-segment costs sum to the uninterrupted run.
      EXPECT_EQ(sum, plan.total_cycles) << alg.name();
      std::uint64_t load = 0;
      auto ctrl = soc::make_plan_controller(kind, alg, g, &load);
      EXPECT_EQ(plan.total_cycles, bist::count_cycles(*ctrl, 1'000'000'000))
          << alg.name();
      EXPECT_EQ(plan.reload_cycles, load) << alg.name();
      if (kind == soc::ControllerKind::Hardwired)
        EXPECT_EQ(plan.reload_cycles, 0u) << alg.name();
      else
        EXPECT_GT(plan.reload_cycles, 0u) << alg.name();
    }
  }
}

TEST(SegmentPlan, TransparentPlanAddsRestoreExactlyWhenNeeded) {
  const memsim::MemoryGeometry g{.address_bits = 4, .word_bits = 1,
                                 .num_ports = 1};
  for (const auto& alg : march::all_algorithms()) {
    const auto base = field::segment_algorithm(alg, g,
                                               soc::ControllerKind::Ucode);
    const auto t = field::segment_transparent(alg, g,
                                              soc::ControllerKind::Ucode);
    if (diag::transparent_restore_needed(alg, g.word_bits)) {
      ASSERT_EQ(t.segments.size(), base.segments.size() + 1) << alg.name();
      const auto& r = t.segments.back();
      EXPECT_TRUE(r.restore);
      EXPECT_EQ(r.op_count(), g.num_words());
      EXPECT_EQ(t.total_cycles, base.total_cycles + g.num_words());
      // The op ranges index the transparent stream 1:1.
      memsim::FaultyMemory mem{g, 5};
      std::vector<memsim::Word> seed(g.num_words());
      for (memsim::Address a = 0; a < g.num_words(); ++a)
        seed[a] = mem.read(0, a);
      EXPECT_EQ(t.total_ops(),
                diag::transparent_stream_with_restore(alg, g, seed).size());
    } else {
      EXPECT_EQ(t, base) << alg.name();
    }
  }
}

// --- segmented-equivalence acceptance suite ---------------------------

soc::TestAssignment task(std::string mem, std::string alg,
                         soc::ControllerKind kind, std::string group = {},
                         double weight = 0.0) {
  soc::TestAssignment a;
  a.memory = std::move(mem);
  a.algorithm = std::move(alg);
  a.controller = kind;
  a.share_group = std::move(group);
  a.power_weight = weight;
  return a;
}

struct OneMemRig {
  soc::SocDescription chip{"rig"};
  soc::TestPlan plan;
  field::SegmentPlan segments;
};

OneMemRig make_rig(const march::MarchAlgorithm& alg,
                   const memsim::MemoryGeometry& g,
                   std::vector<memsim::Fault> faults,
                   std::uint64_t seed = 7) {
  OneMemRig rig;
  soc::MemoryInstance m;
  m.name = "m";
  m.geometry = g;
  m.powerup_seed = seed;
  m.faults = std::move(faults);
  rig.chip.add(std::move(m));
  rig.plan.assign(task("m", alg.name(), soc::ControllerKind::Ucode));
  rig.segments =
      field::segment_transparent(alg, g, soc::ControllerKind::Ucode);
  return rig;
}

/// Independent reference: the uninterrupted transparent pass computed
/// directly from diag/march/bist primitives, bypassing src/field entirely.
struct Reference {
  std::uint64_t mismatches = 0;
  memsim::Word signature = 0;
  std::vector<march::Failure> failures;
  bool contents_preserved = false;
};

Reference reference_pass(const march::MarchAlgorithm& alg,
                         const memsim::MemoryGeometry& g,
                         const std::vector<memsim::Fault>& faults,
                         std::uint64_t seed, std::size_t max_failures) {
  memsim::FaultyMemory memory{g, seed};
  for (const auto& f : faults) memory.add_fault(f);
  std::vector<memsim::Word> initial(g.num_words());
  for (memsim::Address a = 0; a < g.num_words(); ++a)
    initial[a] = memory.read(0, a);
  const auto stream = diag::transparent_stream_with_restore(alg, g, initial);
  Reference ref;
  bist::Misr misr{16};
  for (std::size_t i = 0; i < stream.size(); ++i) {
    const auto& op = stream[i];
    switch (op.kind) {
      case march::MemOp::Kind::Pause:
        memory.advance_time_ns(op.pause_ns);
        break;
      case march::MemOp::Kind::Write:
        memory.write(op.port, op.addr, op.data);
        break;
      case march::MemOp::Kind::Read: {
        const auto actual = memory.read(op.port, op.addr);
        misr.absorb(actual);
        if (actual != op.data) {
          ++ref.mismatches;
          if (ref.failures.size() < max_failures)
            ref.failures.push_back(march::Failure{i, op, actual});
        }
        break;
      }
    }
  }
  ref.signature = misr.signature();
  ref.contents_preserved = true;
  for (memsim::Address a = 0; a < g.num_words(); ++a)
    if (memory.read(0, a) != initial[a]) ref.contents_preserved = false;
  return ref;
}

void expect_pass_matches_reference(const field::FieldReport& report,
                                   const Reference& ref,
                                   const std::string& label) {
  ASSERT_EQ(report.instances.size(), 1u) << label;
  const auto& inst = report.instances[0];
  ASSERT_FALSE(inst.passes.empty()) << label;
  const auto& p0 = inst.passes[0];
  ASSERT_TRUE(p0.completed()) << label;
  // Acceptance: bit-identical verdicts and signature vs the power-on run.
  EXPECT_EQ(p0.mismatches, ref.mismatches) << label;
  ASSERT_TRUE(p0.signature.has_value()) << label;
  EXPECT_EQ(*p0.signature, ref.signature) << label;
  EXPECT_EQ(inst.failures, ref.failures) << label;
  // Faulty cells may defeat the restoring write, so preservation is part
  // of the reference verdict, not an unconditional invariant.
  EXPECT_EQ(p0.contents_preserved, ref.contents_preserved) << label;
}

/// A profile whose i-th window exactly fits the i-th segment burst — the
/// maximally chopped schedule: one reload + one segment per window.
field::MissionProfile one_segment_per_window(const field::SegmentPlan& plan,
                                             std::uint64_t gap) {
  field::MissionProfile profile;
  profile.name = "chopped";
  std::uint64_t t = 0;
  for (const auto& s : plan.segments) {
    const auto width = plan.reload_cycles + s.cycles;
    profile.add_window("m", {t, t + width});
    t += width + gap;
  }
  profile.horizon = t + 1;
  return profile;
}

TEST(FieldEquivalence, MaximallyChoppedRunMatchesUninterruptedRun) {
  // Acceptance sweep: EVERY library algorithm, fault present, the session
  // split into as many windows as it has segments.
  const memsim::MemoryGeometry g{.address_bits = 4, .word_bits = 1,
                                 .num_ports = 1};
  const std::vector<memsim::Fault> faults{
      memsim::StuckAtFault{{5, 0}, true},
      memsim::TransitionFault{{11, 0}, false}};
  for (const auto& alg : march::all_algorithms()) {
    const auto rig = make_rig(alg, g, faults);
    const auto ref = reference_pass(alg, g, faults, 7, 1024);
    const auto profile = one_segment_per_window(rig.segments, 37);
    const auto report = field::run_field(rig.chip, rig.plan, profile,
                                         {.jobs = 1, .repeat_passes = false});
    expect_pass_matches_reference(report, ref, alg.name());
    // Really chopped: as many bursts as segments, each one segment long.
    ASSERT_EQ(report.sessions.size(), rig.segments.segments.size())
        << alg.name();
    for (std::size_t i = 0; i < report.sessions.size(); ++i) {
      EXPECT_EQ(report.sessions[i].segment_begin, i) << alg.name();
      EXPECT_EQ(report.sessions[i].segment_end, i + 1) << alg.name();
    }
  }
}

TEST(FieldEquivalence, WindowWidthSweepMatchesUninterruptedRun) {
  const memsim::MemoryGeometry g{.address_bits = 4, .word_bits = 4,
                                 .num_ports = 1};
  const std::vector<memsim::Fault> faults{
      memsim::StuckAtFault{{3, 2}, false}};
  const auto alg = march::by_name("March C+");
  const auto rig = make_rig(alg, g, faults);
  const auto ref = reference_pass(alg, g, faults, 7, 1024);

  std::uint64_t min_width = 0;
  for (const auto& s : rig.segments.segments)
    min_width = std::max(min_width, rig.segments.reload_cycles + s.cycles);
  std::map<std::size_t, bool> burst_counts;
  for (const auto mult : {1.0, 1.3, 1.9, 2.8, 4.0, 9.0}) {
    const auto width = static_cast<std::uint64_t>(
        static_cast<double>(min_width) * mult);
    field::MissionProfile profile;
    profile.name = "sweep";
    // Generous horizon: total work plus a reload per conceivable burst.
    profile.horizon = 4 * rig.segments.total_cycles +
                      64 * (rig.segments.reload_cycles + width);
    for (std::uint64_t t = 0; t < profile.horizon; t += 2 * width)
      profile.add_window("m", {t, t + width});
    const auto report = field::run_field(rig.chip, rig.plan, profile,
                                         {.jobs = 1, .repeat_passes = false});
    expect_pass_matches_reference(report, ref,
                                  "width x" + std::to_string(mult));
    burst_counts[report.sessions.size()] = true;
  }
  // The sweep genuinely exercised different chunkings.
  EXPECT_GE(burst_counts.size(), 3u);
}

TEST(FieldEquivalence, FuzzedWindowShapesMatchUninterruptedRun) {
  const memsim::MemoryGeometry g{.address_bits = 4, .word_bits = 1,
                                 .num_ports = 1};
  const auto alg = march::by_name("March C");
  std::uint64_t rng = 0x2545F4914F6CDD1Dull;
  const auto next = [&rng]() {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };
  for (int round = 0; round < 24; ++round) {
    std::vector<memsim::Fault> faults;
    if (round % 3 != 0)
      faults.push_back(memsim::StuckAtFault{
          {static_cast<memsim::Address>(next() % 16), 0}, (round & 1) != 0});
    const std::uint64_t seed = next() | 1;
    const auto rig = make_rig(alg, g, faults, seed);
    const auto ref = reference_pass(alg, g, faults, seed, 1024);

    std::uint64_t min_width = 0;
    for (const auto& s : rig.segments.segments)
      min_width = std::max(min_width, rig.segments.reload_cycles + s.cycles);
    field::MissionProfile profile;
    profile.name = "fuzz";
    std::uint64_t t = next() % 100;
    std::uint64_t covered = 0;
    while (covered < 3 * rig.segments.total_cycles) {
      const auto width = min_width + next() % (3 * min_width);
      profile.add_window("m", {t, t + width});
      covered += width;
      t += width + 1 + next() % 500;
    }
    profile.horizon = t + 1;
    const auto report = field::run_field(rig.chip, rig.plan, profile,
                                         {.jobs = 1, .repeat_passes = false});
    expect_pass_matches_reference(report, ref,
                                  "round " + std::to_string(round));
  }
}

// --- interruption semantics -------------------------------------------

TEST(FieldManager, InterruptedPassEmitsNoSignature) {
  const memsim::MemoryGeometry g{.address_bits = 5, .word_bits = 1,
                                 .num_ports = 1};
  const auto alg = march::by_name("March C");
  const auto rig = make_rig(alg, g, {});
  // One window holding only the first segment; the horizon then closes
  // mid-session — the pass must surface as Interrupted with NO signature
  // (the MISR prediction covers the whole stream, a partial signature
  // would be garbage a tester could mistake for a verdict).
  field::MissionProfile profile;
  profile.name = "cut";
  const auto width =
      rig.segments.reload_cycles + rig.segments.segments[0].cycles;
  profile.add_window("m", {0, width});
  profile.horizon = width + 10;
  const auto report = field::run_field(rig.chip, rig.plan, profile,
                                       {.jobs = 1, .repeat_passes = false});
  const auto& inst = report.instances[0];
  ASSERT_EQ(inst.passes.size(), 1u);
  EXPECT_EQ(inst.passes[0].state, bist::SessionState::Interrupted);
  EXPECT_FALSE(inst.passes[0].completed());
  EXPECT_FALSE(inst.passes[0].signature.has_value());
  EXPECT_FALSE(inst.healthy());  // no completed pass -> not proven healthy
  EXPECT_EQ(inst.first_pass_cycle, report.horizon);
  EXPECT_EQ(inst.staleness_cycles, report.horizon);
}

TEST(FieldManager, SessionStateDefaultsToInterrupted) {
  // The bist-level pin for the same contract: a session result that never
  // ran to completion must not read as Completed.
  const bist::SessionResult fresh;
  EXPECT_EQ(fresh.state, bist::SessionState::Interrupted);
  EXPECT_FALSE(fresh.completed());
  EXPECT_FALSE(fresh.passed());  // even with zero mismatches
}

// --- scheduling constraints and metrics -------------------------------

TEST(FieldManager, DemoRunHonorsEveryConstraint) {
  const auto chip = soc::demo_soc();
  const auto plan = soc::demo_plan();
  const auto profile = field::demo_profile();
  const auto report = field::run_field(chip, plan, profile, {.jobs = 2});

  EXPECT_EQ(report.horizon, profile.effective_horizon());
  EXPECT_TRUE(report.all_healthy());
  EXPECT_GT(report.window_utilization, 0.0);
  EXPECT_LE(report.window_utilization, 1.0);

  // Session bursts sit inside an idle window of their memory...
  for (const auto& s : report.sessions) {
    const auto* set = profile.find(s.memory);
    ASSERT_NE(set, nullptr) << s.memory;
    const bool inside = std::any_of(
        set->windows.begin(), set->windows.end(), [&](const auto& w) {
          return w.start <= s.start_cycle && s.end_cycle <= w.end;
        });
    EXPECT_TRUE(inside) << s.memory << " burst at " << s.start_cycle;
    EXPECT_LT(s.segment_begin, s.segment_end) << s.memory;
  }
  // ...never more concurrent streams than bus lanes, never over the power
  // budget, and share-group seats are exclusive.  Concurrency is
  // piecewise-constant, so burst starts cover all instants.
  std::map<std::string, double> weight;
  for (const auto& a : plan.assignments())
    weight[a.memory] = plan.effective_weight(a, *chip.find(a.memory));
  std::map<std::string, std::string> group;
  for (const auto& a : plan.assignments()) group[a.memory] = a.share_group;
  for (const auto& s : report.sessions) {
    std::uint64_t lanes = 0;
    double power = 0.0;
    std::map<std::string, int> group_load;
    for (const auto& o : report.sessions) {
      if (o.start_cycle <= s.start_cycle && s.start_cycle < o.end_cycle) {
        ++lanes;
        power += weight[o.memory];
        if (!group[o.memory].empty()) ++group_load[group[o.memory]];
      }
    }
    EXPECT_LE(lanes, profile.bus_budget) << "at " << s.start_cycle;
    EXPECT_LE(power, plan.power().budget + 1e-9) << "at " << s.start_cycle;
    for (const auto& [name, load] : group_load)
      EXPECT_LE(load, 1) << "group " << name << " at " << s.start_cycle;
  }
  EXPECT_LE(report.peak_power, plan.power().budget + 1e-9);

  // Sorted output, and busy/stall metrics line up with the session list.
  EXPECT_TRUE(std::is_sorted(
      report.sessions.begin(), report.sessions.end(),
      [](const auto& x, const auto& y) {
        return std::tie(x.start_cycle, x.memory) <
               std::tie(y.start_cycle, y.memory);
      }));
  std::map<std::string, std::uint64_t> busy;
  for (const auto& s : report.sessions) busy[s.memory] += s.duration();
  for (const auto& inst : report.instances)
    EXPECT_EQ(inst.busy_cycles, busy[inst.memory]) << inst.memory;
}

TEST(FieldManager, ResultsAreIdenticalForAnyWorkerCount) {
  const auto chip = soc::demo_soc();
  const auto plan = soc::demo_plan();
  const auto profile = field::demo_profile();
  const auto serial = field::run_field(chip, plan, profile, {.jobs = 1});
  EXPECT_EQ(serial, field::run_field(chip, plan, profile, {.jobs = 2}));
  EXPECT_EQ(serial, field::run_field(chip, plan, profile, {.jobs = 8}));
}

TEST(FieldManager, FoldsBisrRetestIntoLaterWindow) {
  const auto chip = soc::demo_soc();
  const auto plan = soc::demo_plan();
  const auto report = field::run_field(chip, plan, field::demo_profile(),
                                       {.jobs = 2, .repeat_passes = false});
  // Transparent detection is seed-dependent (the paper's known caveat):
  // a fault the stream never excites with these contents stays latent and
  // the instance tests clean.  rom_patch's stuck-at, however, must always
  // be caught — one of the two complementary reads hits the stuck value.
  int retested = 0;
  for (const auto& inst : report.instances) {
    const auto* m = chip.find(inst.memory);
    ASSERT_NE(m, nullptr);
    if (m->faults.empty() || !inst.repair.has_value()) continue;
    EXPECT_TRUE(inst.repair->repairable) << inst.memory;
    EXPECT_TRUE(inst.repair->retest_passed) << inst.memory;
    // The retest is a *scheduled* second pass in a later window, not a
    // same-window re-run: its first burst starts after the first pass
    // completed.
    ASSERT_EQ(inst.passes.size(), 2u) << inst.memory;
    EXPECT_TRUE(inst.passes[1].retest) << inst.memory;
    std::uint64_t first_done = 0, retest_start = 0;
    for (const auto& s : report.sessions) {
      if (s.memory != inst.memory) continue;
      if (s.pass == 0) first_done = std::max(first_done, s.end_cycle);
      if (s.retest && retest_start == 0) retest_start = s.start_cycle;
    }
    EXPECT_GE(retest_start, first_done) << inst.memory;
    ++retested;
  }
  EXPECT_GE(retested, 1);
  const auto rom = std::find_if(
      report.instances.begin(), report.instances.end(),
      [](const auto& r) { return r.memory == "rom_patch"; });
  ASSERT_NE(rom, report.instances.end());
  EXPECT_TRUE(rom->repair.has_value());
  EXPECT_TRUE(report.all_healthy());
}

TEST(FieldManager, TighterBusBudgetTradesStallsForUtilization) {
  const auto chip = soc::demo_soc();
  const auto plan = soc::demo_plan();
  auto profile = field::demo_profile();
  std::map<std::uint64_t, std::uint64_t> stalls;
  for (const std::uint64_t lanes : {1u, 2u, 9u}) {
    profile.bus_budget = lanes;
    const auto report = field::run_field(chip, plan, profile, {.jobs = 2});
    stalls[lanes] = report.bus_stall_cycles;
  }
  // One shared lane must contend; nine lanes (one per memory) cannot.
  EXPECT_GT(stalls[1], stalls[9]);
  EXPECT_EQ(stalls[9], 0u);
  EXPECT_GE(stalls[1], stalls[2]);
}

TEST(FieldManager, MemoriesWithoutWindowsStayUntested) {
  const memsim::MemoryGeometry g{.address_bits = 4, .word_bits = 1,
                                 .num_ports = 1};
  const auto alg = march::by_name("MATS");
  auto rig = make_rig(alg, g, {});
  field::MissionProfile profile;
  profile.name = "empty";
  profile.horizon = 10'000;
  const auto report = field::run_field(rig.chip, rig.plan, profile,
                                       {.jobs = 1});
  ASSERT_EQ(report.instances.size(), 1u);
  EXPECT_TRUE(report.instances[0].passes.empty());
  EXPECT_EQ(report.instances[0].staleness_cycles, 10'000u);
  EXPECT_FALSE(report.instances[0].healthy());
  EXPECT_EQ(report.window_utilization, 0.0);
}

TEST(FieldManager, RejectsInvalidInputs) {
  const auto chip = soc::demo_soc();
  const auto plan = soc::demo_plan();
  field::MissionProfile unknown;
  unknown.add_window("no_such_mem", {0, 1000});
  EXPECT_THROW((void)field::run_field(chip, plan, unknown, {}),
               field::FieldError);
  field::MissionProfile overlapping;
  overlapping.add_window("cpu_l2", {0, 100});
  overlapping.add_window("cpu_l2", {50, 150});
  EXPECT_THROW((void)field::run_field(chip, plan, overlapping, {}),
               field::FieldError);
}

}  // namespace
