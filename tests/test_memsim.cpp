// Memory substrate tests: golden SRAM behaviour and the observable
// semantics of every functional fault model.

#include <gtest/gtest.h>

#include "march/coverage.h"
#include "march/library.h"
#include "memsim/faulty_memory.h"

namespace {

using namespace pmbist::memsim;

constexpr MemoryGeometry kSmall{.address_bits = 4, .word_bits = 4,
                                .num_ports = 2};

TEST(Geometry, DerivedQuantities) {
  EXPECT_EQ(kSmall.num_words(), 16u);
  EXPECT_EQ(kSmall.word_mask(), 0xFu);
  EXPECT_FALSE(kSmall.bit_oriented());
  EXPECT_TRUE(kSmall.multiport());
  const MemoryGeometry bit{.address_bits = 10};
  EXPECT_TRUE(bit.bit_oriented());
  EXPECT_FALSE(bit.multiport());
  EXPECT_EQ(bit.word_mask(), 1u);
}

TEST(SramModel, ReadBackAndMasking) {
  SramModel mem{kSmall, std::uint64_t{42}};
  mem.write(0, 3, 0xFF);  // masked to 4 bits
  EXPECT_EQ(mem.read(1, 3), 0xFu);
  mem.write(1, 3, 0x5);
  EXPECT_EQ(mem.read(0, 3), 0x5u);
}

TEST(SramModel, PowerUpIsSeedDeterministic) {
  SramModel a{kSmall, std::uint64_t{7}};
  SramModel b{kSmall, std::uint64_t{7}};
  SramModel c{kSmall, std::uint64_t{8}};
  bool any_diff = false;
  for (Address i = 0; i < kSmall.num_words(); ++i) {
    EXPECT_EQ(a.read(0, i), b.read(0, i));
    if (a.read(0, i) != c.read(0, i)) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(FaultDescriptors, ClassAndDescription) {
  EXPECT_EQ(fault_class(StuckAtFault{{1, 0}, true}), FaultClass::SAF);
  EXPECT_EQ(fault_class(ReadDestructiveFault{{1, 0}, true}),
            FaultClass::DRDF);
  EXPECT_EQ(fault_class(ReadDestructiveFault{{1, 0}, false}),
            FaultClass::RDF);
  EXPECT_EQ(fault_class_name(FaultClass::CFin), "CFin");
  EXPECT_NE(describe(StuckAtFault{{3, 2}, true}).find("stuck-at-1"),
            std::string::npos);
  EXPECT_EQ(all_fault_classes().size(), 12u);
}

TEST(FaultyMemory, RejectsOutOfRangeFaults) {
  FaultyMemory mem{kSmall};
  EXPECT_THROW(mem.add_fault(StuckAtFault{{99, 0}, true}),
               std::invalid_argument);
  EXPECT_THROW(mem.add_fault(StuckAtFault{{0, 9}, true}),
               std::invalid_argument);
  EXPECT_THROW(mem.add_fault(InversionCouplingFault{{1, 1}, {1, 1}, true}),
               std::invalid_argument);
}

TEST(FaultyMemory, StuckAt) {
  FaultyMemory mem{kSmall};
  mem.add_fault(StuckAtFault{{5, 2}, true});
  mem.write(0, 5, 0x0);
  EXPECT_EQ(mem.read(0, 5) & 0x4u, 0x4u);  // bit 2 reads 1
  mem.write(0, 5, 0xF);
  EXPECT_EQ(mem.read(0, 5), 0xFu);
}

TEST(FaultyMemory, TransitionFaultBlocksOneDirection) {
  FaultyMemory mem{kSmall};
  mem.add_fault(TransitionFault{{2, 0}, /*rising=*/true});
  mem.write(0, 2, 0x0);
  mem.write(0, 2, 0x1);  // 0->1 blocked
  EXPECT_EQ(mem.read(0, 2) & 1u, 0u);
  // Falling direction still works once the cell somehow holds 1: inject
  // the complementary case on another cell.
  mem.add_fault(TransitionFault{{3, 0}, /*rising=*/false});
  mem.write(0, 3, 0x1);
  mem.write(0, 3, 0x0);  // 1->0 blocked
  EXPECT_EQ(mem.read(0, 3) & 1u, 1u);
  mem.write(0, 3, 0x1);  // writing 1 again is fine
  EXPECT_EQ(mem.read(0, 3) & 1u, 1u);
}

TEST(FaultyMemory, InversionCoupling) {
  FaultyMemory mem{kSmall};
  mem.add_fault(InversionCouplingFault{{1, 0}, {9, 0}, /*on_rising=*/true});
  mem.write(0, 9, 0x0);
  mem.write(0, 1, 0x0);
  mem.write(0, 1, 0x1);  // aggressor rises -> victim inverts
  EXPECT_EQ(mem.read(0, 9) & 1u, 1u);
  mem.write(0, 1, 0x0);  // falling does nothing
  EXPECT_EQ(mem.read(0, 9) & 1u, 1u);
  mem.write(0, 1, 0x1);  // rises again -> inverts back
  EXPECT_EQ(mem.read(0, 9) & 1u, 0u);
}

TEST(FaultyMemory, IdempotentCoupling) {
  FaultyMemory mem{kSmall};
  mem.add_fault(IdempotentCouplingFault{{1, 1}, {2, 1}, /*on_rising=*/false,
                                        /*forced_value=*/true});
  mem.write(0, 2, 0x0);
  mem.write(0, 1, 0x2);
  mem.write(0, 1, 0x0);  // aggressor falls -> victim forced to 1
  EXPECT_EQ(mem.read(0, 2) & 0x2u, 0x2u);
  mem.write(0, 2, 0x0);  // victim is writable again
  EXPECT_EQ(mem.read(0, 2) & 0x2u, 0x0u);
}

TEST(FaultyMemory, StateCouplingForcesVictimWhileAggressorHolds) {
  FaultyMemory mem{kSmall};
  mem.add_fault(StateCouplingFault{{4, 0}, {8, 0}, /*aggressor_state=*/true,
                                   /*forced_value=*/false});
  mem.write(0, 4, 0x1);  // aggressor enters state 1
  mem.write(0, 8, 0x1);  // write to victim does not stick
  EXPECT_EQ(mem.read(0, 8) & 1u, 0u);
  mem.write(0, 4, 0x0);  // aggressor leaves the forcing state
  mem.write(0, 8, 0x1);
  EXPECT_EQ(mem.read(0, 8) & 1u, 1u);
}

TEST(FaultyMemory, AddressDecoderNoCell) {
  FaultyMemory mem{kSmall};
  mem.add_fault(AddressDecoderFault{6, {}});
  mem.write(0, 6, 0xF);          // lost
  EXPECT_EQ(mem.read(0, 6), 0u);  // precharged-bus constant
}

TEST(FaultyMemory, AddressDecoderWrongCell) {
  FaultyMemory mem{kSmall};
  mem.add_fault(AddressDecoderFault{6, {7}});
  mem.write(0, 7, 0x0);
  mem.write(0, 6, 0xA);  // actually writes cell 7
  EXPECT_EQ(mem.read(0, 7), 0xAu);
  EXPECT_EQ(mem.read(0, 6), 0xAu);
  EXPECT_EQ(mem.peek(7), 0xAu);
}

TEST(FaultyMemory, AddressDecoderMultiCellWiredAnd) {
  FaultyMemory mem{kSmall};
  mem.add_fault(AddressDecoderFault{2, {2, 3}});
  mem.write(0, 3, 0x3);
  // Write through the faulty address hits both cells.
  mem.write(0, 2, 0xC);
  EXPECT_EQ(mem.peek(2), 0xCu);
  EXPECT_EQ(mem.peek(3), 0xCu);
  // Make the two cells differ via the healthy address 3, then read 2.
  mem.write(0, 3, 0x5);
  EXPECT_EQ(mem.read(0, 2), 0xC & 0x5);
}

TEST(FaultyMemory, StuckOpenReadsSenseResidue) {
  FaultyMemory mem{kSmall};
  mem.add_fault(StuckOpenFault{{5, 0}});
  mem.write(0, 4, 0x1);
  mem.write(0, 5, 0x1);       // lost
  (void)mem.read(0, 4);       // residue on column 0 becomes 1
  EXPECT_EQ(mem.read(0, 5) & 1u, 1u);
  mem.write(0, 4, 0x0);
  (void)mem.read(0, 4);       // residue becomes 0
  EXPECT_EQ(mem.read(0, 5) & 1u, 0u);
}

TEST(FaultyMemory, DataRetentionDecaysAfterHoldTime) {
  FaultyMemory mem{kSmall};
  mem.add_fault(DataRetentionFault{{9, 3}, /*leak_to=*/false,
                                   /*hold_time_ns=*/1000});
  mem.write(0, 9, 0xF);
  mem.advance_time_ns(500);
  EXPECT_EQ(mem.read(0, 9), 0xFu);  // within hold time
  mem.advance_time_ns(600);
  EXPECT_EQ(mem.read(0, 9), 0x7u);  // bit 3 leaked to 0
  mem.write(0, 9, 0xF);             // refresh restores
  EXPECT_EQ(mem.read(0, 9), 0xFu);
}

TEST(FaultyMemory, ReadDestructiveFlipsEveryRead) {
  FaultyMemory mem{kSmall};
  mem.add_fault(ReadDestructiveFault{{1, 0}, /*deceptive=*/false});
  mem.write(0, 1, 0x0);
  EXPECT_EQ(mem.read(0, 1) & 1u, 1u);  // wrong value, cell flipped
  EXPECT_EQ(mem.read(0, 1) & 1u, 0u);  // flips back
}

TEST(FaultyMemory, WeakCellMisreadsOnlyBackToBack) {
  FaultyMemory mem{kSmall};
  mem.add_fault(ReadDestructiveFault{{1, 0}, /*deceptive=*/true});
  mem.write(0, 1, 0x1);
  EXPECT_EQ(mem.read(0, 1) & 1u, 1u);  // first read correct
  EXPECT_EQ(mem.read(0, 1) & 1u, 0u);  // back-to-back read misreads
  (void)mem.read(0, 2);                // intervening op: recovery
  EXPECT_EQ(mem.read(0, 1) & 1u, 1u);
  // A pause also recovers.
  (void)mem.read(0, 1);
  mem.advance_time_ns(10);
  EXPECT_EQ(mem.read(0, 1) & 1u, 1u);
}

TEST(FaultyMemory, MultipleFaultsCoexist) {
  FaultyMemory mem{kSmall};
  mem.add_fault(StuckAtFault{{0, 0}, true});
  mem.add_fault(StuckAtFault{{15, 3}, false});
  mem.write(0, 0, 0x0);
  mem.write(0, 15, 0xF);
  EXPECT_EQ(mem.read(0, 0) & 1u, 1u);
  EXPECT_EQ(mem.read(0, 15) & 0x8u, 0u);
  EXPECT_EQ(mem.faults().size(), 2u);
}

TEST(FaultyMemory, PortReadFaultIsPortSpecific) {
  FaultyMemory mem{kSmall};
  mem.add_fault(PortReadFault{/*port=*/1, /*bit=*/2});
  mem.write(0, 6, 0x0);
  EXPECT_EQ(mem.read(0, 6), 0x0u);  // healthy port
  EXPECT_EQ(mem.read(1, 6), 0x4u);  // defective port inverts bit 2
  // The array itself is untouched: a write through the bad port is fine.
  mem.write(1, 6, 0xF);
  EXPECT_EQ(mem.read(0, 6), 0xFu);
  EXPECT_EQ(mem.read(1, 6), 0xBu);
  EXPECT_THROW(mem.add_fault(PortReadFault{5, 0}), std::invalid_argument);
}

TEST(FaultyMemory, PortReadFaultNeedsThePortLoop) {
  // The paper's Inc. Port loop repeats the whole test per port; a
  // single-port pass can never see a defect in the other port's read path.
  using namespace pmbist;
  const MemoryGeometry g{.address_bits = 4, .word_bits = 4, .num_ports = 2};
  const auto alg = march::by_name("March C");

  FaultyMemory full{g, 3};
  full.add_fault(PortReadFault{1, 0});
  EXPECT_FALSE(
      march::run_stream(march::expand(alg, g), full, 1).passed());

  FaultyMemory port0_only{g, 3};
  port0_only.add_fault(PortReadFault{1, 0});
  EXPECT_TRUE(march::run_stream(
                  march::expand_single_pass(alg, g, /*port=*/0, 0),
                  port0_only, 1)
                  .passed());
}

TEST(FaultyMemory, PortsShareTheArray) {
  FaultyMemory mem{kSmall};
  mem.write(0, 3, 0x9);
  EXPECT_EQ(mem.read(1, 3), 0x9u);
  mem.write(1, 3, 0x6);
  EXPECT_EQ(mem.read(0, 3), 0x6u);
}

}  // namespace
