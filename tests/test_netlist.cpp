// Netlist substrate tests: technology library invariants, inventory
// arithmetic, macro-component cost models, two-level logic (wide NAND
// decomposition, SOP costing), Quine-McCluskey correctness (including a
// randomized property sweep), and FSM synthesis.

#include <gtest/gtest.h>

#include <random>

#include "netlist/components.h"
#include "netlist/fsm_synth.h"
#include "netlist/qm.h"

namespace {

using namespace pmbist::netlist;

// --- technology library -----------------------------------------------------

TEST(TechLibrary, Nand2IsTheGateEquivalentUnit) {
  const auto lib = TechLibrary::cmos5s();
  EXPECT_DOUBLE_EQ(lib.ge(Cell::Nand2), 1.0);
  EXPECT_DOUBLE_EQ(lib.area_um2(Cell::Nand2), lib.area_per_ge_um2());
}

TEST(TechLibrary, ScanOnlyCellsMatchThePaperRatio) {
  const auto lib = TechLibrary::cmos5s();
  // "approximately 4 to 5 times smaller than regular full scan registers"
  EXPECT_GE(lib.scan_only_shrink_factor(), 4.0);
  EXPECT_LE(lib.scan_only_shrink_factor(), 5.0);
  // "operate in about 1/8 or 1/6 of functional clock rate"
  const double f = lib.info(Cell::ScanOnlyCell).max_clock_fraction;
  EXPECT_GE(f, 1.0 / 8.0);
  EXPECT_LE(f, 1.0 / 6.0);
}

TEST(TechLibrary, SequentialCellsCostMoreThanCombinational) {
  const auto lib = TechLibrary::cmos5s();
  EXPECT_GT(lib.ge(Cell::Dff), lib.ge(Cell::Mux2));
  EXPECT_GT(lib.ge(Cell::ScanDff), lib.ge(Cell::Dff));
  EXPECT_GT(lib.ge(Cell::DffEn), lib.ge(Cell::Dff));
  EXPECT_LT(lib.ge(Cell::ScanOnlyCell), lib.ge(Cell::Dff));
}

// --- gate inventory ----------------------------------------------------------

TEST(GateInventory, Arithmetic) {
  const auto lib = TechLibrary::cmos5s();
  GateInventory a;
  a.add(Cell::Nand2, 3);
  a.add(Cell::Inv, 2);
  GateInventory b;
  b.add(Cell::Nand2, 1);
  const GateInventory sum = a + b;
  EXPECT_EQ(sum.count(Cell::Nand2), 4);
  EXPECT_EQ(sum.count(Cell::Inv), 2);
  EXPECT_EQ(sum.total_cells(), 6);
  EXPECT_DOUBLE_EQ(sum.total_ge(lib), 4.0 + 2 * 0.5);
  EXPECT_EQ(sum.scaled(2).count(Cell::Nand2), 8);
  EXPECT_EQ(a.count(Cell::Dff), 0);
}

TEST(GateInventory, AddZeroIsNoOp) {
  GateInventory a;
  a.add(Cell::Dff, 0);
  EXPECT_TRUE(a.empty());
}

TEST(AreaReport, TotalsAndFormatting) {
  const auto lib = TechLibrary::cmos5s();
  AreaReport report{"unit"};
  GateInventory block;
  block.add(Cell::Dff, 4);
  report.add_block("regs", block);
  report.add_block("logic", register_bank(2, RegisterKind::Scan));
  EXPECT_DOUBLE_EQ(report.total_ge(lib), 4 * 5.5 + 2 * 7.25);
  const std::string s = report.to_string(lib);
  EXPECT_NE(s.find("regs"), std::string::npos);
  EXPECT_NE(s.find("TOTAL"), std::string::npos);
}

// --- components ----------------------------------------------------------------

TEST(Components, CounterCostsScaleLinearly) {
  const auto lib = TechLibrary::cmos5s();
  const double c4 = binary_counter(4).total_ge(lib);
  const double c8 = binary_counter(8).total_ge(lib);
  EXPECT_GT(c8, c4);
  EXPECT_NEAR(c8 / c4, 2.0, 0.3);
  EXPECT_GT(up_down_counter(8).total_ge(lib), c8);
}

TEST(Components, MuxTreeCost) {
  EXPECT_EQ(mux_tree(10, 16).count(Cell::Mux2), 150);
  EXPECT_EQ(mux_tree(10, 1).count(Cell::Mux2), 0);
  EXPECT_EQ(mux_tree(0, 16).count(Cell::Mux2), 0);
}

TEST(Components, ComparatorAndDetectors) {
  const auto eq = equality_comparator(8);
  EXPECT_EQ(eq.count(Cell::Xnor2), 8);
  EXPECT_EQ(eq.count(Cell::And2), 7);
  EXPECT_EQ(constant_detector(1).count(Cell::And2), 0);
  EXPECT_EQ(or_tree(8).count(Cell::Or2), 7);
}

TEST(Components, DecoderGrowsExponentially) {
  const auto lib = TechLibrary::cmos5s();
  EXPECT_GT(decoder(4).total_ge(lib), 2 * decoder(3).total_ge(lib));
}

// --- wide NAND / SOP costing ------------------------------------------------

TEST(Logic, WideNandSmallCases) {
  EXPECT_EQ(wide_nand(1).count(Cell::Inv), 1);
  EXPECT_EQ(wide_nand(2).count(Cell::Nand2), 1);
  EXPECT_EQ(wide_nand(3).count(Cell::Nand3), 1);
  EXPECT_EQ(wide_nand(4).count(Cell::Nand4), 1);
}

TEST(Logic, WideNandDecomposes) {
  const auto lib = TechLibrary::cmos5s();
  // Cost must be monotone in fan-in and superlinear past 4.
  double prev = 0;
  for (int k = 1; k <= 24; ++k) {
    const double ge = wide_nand(k).total_ge(lib);
    EXPECT_GE(ge, prev) << "fan-in " << k;
    prev = ge;
  }
  EXPECT_GT(wide_nand(8).total_ge(lib), wide_nand(4).total_ge(lib) * 1.5);
}

TEST(Logic, SopInventoryEdgeCases) {
  EXPECT_TRUE(sop_inventory({}).empty());                    // constant 0
  EXPECT_TRUE(sop_inventory({Cube{0, 0}}).empty());          // constant 1
  // Single literal, free complements: just the output stage.
  const auto single = sop_inventory({Cube{1, 1}});
  EXPECT_EQ(single.count(Cell::Inv), 1);
}

TEST(Logic, CubeSemantics) {
  const Cube c{0b101, 0b111};  // x0 x1' x2
  EXPECT_TRUE(c.covers(0b101));
  EXPECT_FALSE(c.covers(0b111));
  EXPECT_EQ(c.literals(), 3);
  const Cube wider{0b001, 0b001};  // x0
  EXPECT_TRUE(wider.contains(c));
  EXPECT_FALSE(c.contains(wider));
  EXPECT_EQ(c.to_string(3), "x0 x1' x2");
}

// --- Quine-McCluskey ----------------------------------------------------------

TEST(Qm, ClassicTextbookExample) {
  // f(a,b,c,d) = sum m(4,8,10,11,12,15) + d(9,14): minimal cover has 4
  // terms (a textbook QM exercise).
  const std::vector<std::uint32_t> on{4, 8, 10, 11, 12, 15};
  const std::vector<std::uint32_t> dc{9, 14};
  const auto r = minimize(4, on, dc);
  TruthTable t{4};
  for (auto m : on) t.set(m, Tri::One);
  for (auto m : dc) t.set(m, Tri::DontCare);
  EXPECT_TRUE(t.is_implemented_by(r.cover));
  EXPECT_LE(r.cover.size(), 4u);
}

TEST(Qm, ConstantFunctions) {
  EXPECT_TRUE(minimize(3, {}, {}).cover.empty());
  const std::vector<std::uint32_t> all{0, 1, 2, 3, 4, 5, 6, 7};
  const auto r = minimize(3, all, {});
  ASSERT_EQ(r.cover.size(), 1u);
  EXPECT_EQ(r.cover[0].mask, 0u);  // tautology
}

TEST(Qm, XorHasNoSharedCubes) {
  // 2-input XOR: onset {01, 10}; both minterms are primes.
  const std::vector<std::uint32_t> on{1, 2};
  const auto r = minimize(2, on, {});
  EXPECT_EQ(r.cover.size(), 2u);
  EXPECT_EQ(r.literals, 4);
}

TEST(Qm, DontCaresEnableLargerCubes) {
  // onset {0}, dc {1,2,3} over 2 vars -> single tautology-ish cube.
  const std::vector<std::uint32_t> on{0};
  const std::vector<std::uint32_t> dc{1, 2, 3};
  const auto r = minimize(2, on, dc);
  ASSERT_EQ(r.cover.size(), 1u);
  EXPECT_EQ(r.cover[0].literals(), 0);
}

// Property sweep: on random functions, the minimized cover must implement
// the truth table exactly and never exceed the number of onset minterms.
class QmRandomProperty : public ::testing::TestWithParam<int> {};

TEST_P(QmRandomProperty, CoverImplementsFunction) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()));
  const int vars = 3 + GetParam() % 6;  // 3..8 variables
  TruthTable t{vars};
  std::uniform_int_distribution<int> tri(0, 5);
  std::size_t onset_size = 0;
  for (std::uint32_t m = 0; m < t.size(); ++m) {
    const int v = tri(rng);
    if (v <= 2) {
      t.set(m, Tri::Zero);
    } else if (v <= 4) {
      t.set(m, Tri::One);
      ++onset_size;
    } else {
      t.set(m, Tri::DontCare);
    }
  }
  const auto r = minimize(t);
  EXPECT_TRUE(t.is_implemented_by(r.cover)) << "seed " << GetParam();
  EXPECT_LE(r.cover.size(), onset_size);
  EXPECT_EQ(r.literals, cover_literals(r.cover));
}

INSTANTIATE_TEST_SUITE_P(Seeds, QmRandomProperty, ::testing::Range(1, 33));

// Exactness property: for every 3-variable function (all 2^8 of them), the
// greedy cover must match the size of the true minimum prime cover found
// by brute force over all prime subsets.
TEST(Qm, GreedyCoverIsMinimalForAllThreeVariableFunctions) {
  for (std::uint32_t truth = 0; truth < 256; ++truth) {
    std::vector<std::uint32_t> onset;
    for (std::uint32_t m = 0; m < 8; ++m)
      if ((truth >> m) & 1u) onset.push_back(m);
    const auto result = minimize(3, onset, {});
    if (onset.empty()) {
      EXPECT_TRUE(result.cover.empty());
      continue;
    }
    const auto primes = prime_implicants(3, onset, {});
    // Brute-force the minimum cover size over all prime subsets.
    const auto np = primes.size();
    ASSERT_LE(np, 16u);
    std::size_t best = np + 1;
    for (std::uint32_t subset = 1; subset < (1u << np); ++subset) {
      const auto size = static_cast<std::size_t>(
          __builtin_popcount(subset));
      if (size >= best) continue;
      bool all_covered = true;
      for (std::uint32_t m : onset) {
        bool covered = false;
        for (std::size_t p = 0; p < np && !covered; ++p)
          if ((subset >> p) & 1u) covered = primes[p].covers(m);
        if (!covered) {
          all_covered = false;
          break;
        }
      }
      if (all_covered) best = size;
    }
    EXPECT_EQ(result.cover.size(), best)
        << "truth table 0x" << std::hex << truth;
  }
}

TEST(Qm, PrimeImplicantsAreAllPrime) {
  const std::vector<std::uint32_t> on{0, 1, 2, 5, 6, 7};
  const auto primes = prime_implicants(3, on, {});
  // No prime may contain another.
  for (std::size_t i = 0; i < primes.size(); ++i) {
    for (std::size_t j = 0; j < primes.size(); ++j) {
      if (i != j) {
        EXPECT_FALSE(primes[i].contains(primes[j]));
      }
    }
  }
}

// --- FSM synthesis -------------------------------------------------------------

MooreFsm make_toggle_fsm() {
  MooreFsm fsm{"toggle", {"go"}, {"out"}};
  const int s0 = fsm.add_state("S0", 0);
  const int s1 = fsm.add_state("S1", 1);
  fsm.add_arc(s0, Cube{1, 1}, s1);
  fsm.add_arc(s1, Cube{1, 1}, s0);
  return fsm;
}

TEST(FsmSynth, BehavioralStep) {
  const auto fsm = make_toggle_fsm();
  EXPECT_EQ(fsm.step(0, 0), 0);  // no arc matches -> stay
  EXPECT_EQ(fsm.step(0, 1), 1);
  EXPECT_EQ(fsm.step(1, 1), 0);
  EXPECT_EQ(fsm.outputs_of(1), 1u);
}

TEST(FsmSynth, ValidateCatchesBadArcs) {
  MooreFsm fsm{"bad", {"a"}, {"o"}};
  const int s = fsm.add_state("S", 0);
  fsm.add_arc(s, Cube{1, 1}, 5);  // out of range
  EXPECT_FALSE(fsm.validate().empty());
}

TEST(FsmSynth, ToggleSynthesizesTiny) {
  const auto lib = TechLibrary::cmos5s();
  const auto r = synthesize(make_toggle_fsm());
  EXPECT_EQ(r.state_bits, 1);
  // 1 scan flop + a few gates.
  EXPECT_LT(r.inventory.total_ge(lib), 20.0);
  EXPECT_EQ(r.inventory.count(Cell::ScanDff), 1);
}

TEST(FsmSynth, MoreStatesMoreArea) {
  const auto lib = TechLibrary::cmos5s();
  auto chain = [](int n) {
    MooreFsm fsm{"chain", {"go"}, {"o0", "o1", "o2"}};
    for (int i = 0; i < n; ++i) {
      // += instead of "S" + to_string(i): GCC 12 -O3 bogus -Wrestrict.
      std::string name = "S";
      name += std::to_string(i);
      fsm.add_state(name, static_cast<std::uint32_t>(i % 8));
    }
    for (int i = 0; i < n; ++i) fsm.add_arc(i, Cube{1, 1}, (i + 1) % n);
    return fsm;
  };
  const double ge4 = synthesize(chain(4)).inventory.total_ge(lib);
  const double ge16 = synthesize(chain(16)).inventory.total_ge(lib);
  EXPECT_GT(ge16, ge4);
}

// Property: synthesized next-state logic is checked against fsm.step()
// inside synthesize() via assertions on the minimized covers; here we
// additionally verify Moore-output constancy optimizes to zero gates.
TEST(FsmSynth, ConstantOutputCostsNothing) {
  MooreFsm fsm{"const", {"go"}, {"always1"}};
  fsm.add_state("A", 1);
  fsm.add_state("B", 1);
  fsm.add_arc(0, Cube{1, 1}, 1);
  fsm.add_arc(1, Cube{1, 1}, 0);
  const auto r = synthesize(fsm);
  EXPECT_EQ(r.output_literals, 0);
}

}  // namespace
