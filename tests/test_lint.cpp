// The static verifier (`pmbist lint`).
//
// The acceptance-critical suite is ProverVsQualifier: for every library
// algorithm and every provable fault class, the lint prover's *guaranteed*
// verdict must coincide exactly with the exhaustive simulation-based
// qualifier (march::analyze) — the prover reasons structurally, the
// qualifier by brute force, and they may never disagree.  On top of that,
// guaranteed classes must show 100% detection in the sampled
// fault-simulation campaign.
//
// The rest pins the diagnostics engine, each lint pass on crafted inputs
// (including the on-disk corpus under tests/lint_cases/ that the CLI
// WILL_FAIL tests also run), input-kind sniffing, determinism, and the
// error-location contract of the assembler / compiler / image loaders.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <initializer_list>
#include <sstream>
#include <string>
#include <vector>

#include "lint/cfg.h"

#include "field/manager.h"
#include "field/profile.h"
#include "field/schedule_io.h"
#include "lint/certify.h"
#include "lint/chip_lint.h"
#include "lint/diagnostics.h"
#include "lint/driver.h"
#include "lint/equiv.h"
#include "lint/fix.h"
#include "lint/lifter.h"
#include "lint/march_lint.h"
#include "lint/profile_lint.h"
#include "lint/program_lint.h"
#include "lint/prover.h"
#include "march/analysis.h"
#include "march/coverage.h"
#include "march/kernel.h"
#include "march/library.h"
#include "march/parser.h"
#include "mbist_pfsm/compiler.h"
#include "mbist_ucode/assembler.h"
#include "soc/chip.h"
#include "soc/chip_json.h"
#include "soc/schedule_io.h"
#include "soc/scheduler.h"

namespace {

using namespace pmbist;

std::string read_case(const std::string& name) {
  const std::string path =
      std::string{PMBIST_SOURCE_DIR} + "/tests/lint_cases/" + name;
  std::ifstream in{path};
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

lint::Report lint_case(const std::string& name) {
  return lint::lint_text(read_case(name), name);
}

std::string read_repo_file(const std::string& rel) {
  const std::string path = std::string{PMBIST_SOURCE_DIR} + "/" + rel;
  std::ifstream in{path};
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// ---------------------------------------------------------------------------
// Prover vs the exhaustive qualifier and the fault-simulation campaign.

TEST(Prover, AgreesWithQualifierOnEveryLibraryAlgorithm) {
  for (const auto& alg : march::all_algorithms()) {
    const auto proof = lint::prove_coverage(alg);
    for (const auto cls : lint::provable_classes()) {
      const auto* p = proof.find(cls);
      ASSERT_NE(p, nullptr) << alg.name();
      const bool qualified =
          march::analyze(alg, cls) == march::Detection::Guaranteed;
      EXPECT_EQ(p->guaranteed, qualified)
          << alg.name() << " / " << memsim::fault_class_name(cls)
          << ": prover says " << (p->guaranteed ? "guaranteed" : "partial")
          << " (" << p->detail << ") but the exhaustive qualifier says "
          << (qualified ? "guaranteed" : "not guaranteed");
    }
  }
}

TEST(Prover, GuaranteedClassesReachFullSimulatedCoverage) {
  const memsim::MemoryGeometry geometry{.address_bits = 4,
                                        .word_bits = 1,
                                        .num_ports = 1};
  // The prover is pinned against the campaign under BOTH kernels: a static
  // "guaranteed" that either the scalar reference or the packed PPSFP
  // engine fails to reproduce is a bug in one of the three.  The kernel is
  // carried per-evaluation (CoverageOptions::kernel) — no process state.
  for (const auto kernel :
       {march::CampaignKernel::Scalar, march::CampaignKernel::Packed}) {
    for (const auto& alg : march::all_algorithms()) {
      const auto proof = lint::prove_coverage(alg);
      for (const auto& [cls, p] : proof.classes) {
        if (!p.guaranteed) continue;
        // LF is a composite class (pairs of coupling faults); the
        // campaign's per-class universes enumerate single faults only.
        if (cls == memsim::FaultClass::LF) continue;
        const auto cell = march::evaluate_coverage(
            alg, cls, geometry,
            {.seed = 7,
             .max_instances_per_class = 32,
             .jobs = 1,
             .kernel = kernel});
        ASSERT_GT(cell.total, 0) << alg.name();
        EXPECT_EQ(cell.detected, cell.total)
            << alg.name() << " / " << memsim::fault_class_name(cls)
            << " kernel=" << march::kernel_name(kernel)
            << ": proven guaranteed but the campaign missed instances";
      }
    }
  }
}

TEST(Prover, EveryProofCarriesAWitness) {
  const auto proof = lint::prove_coverage(march::mats());
  ASSERT_EQ(proof.classes.size(), lint::provable_classes().size());
  for (const auto& [cls, p] : proof.classes)
    EXPECT_FALSE(p.detail.empty()) << memsim::fault_class_name(cls);
}

TEST(Prover, ExtendedClassesMatchTextbookVerdicts) {
  // Non-vacuity pins for the position-sensitive classes: the table below is
  // the known verdict per library algorithm (matching van de Goor and the
  // paper's Tables 1-2 — e.g. only the triple-read ++ variants and March SS
  // catch DRDF, and only the linked-fault tests catch LF), so a prover
  // regression that flips everything to "partial" (or to "guaranteed")
  // cannot slip past the agreement test above.
  const struct {
    const char* name;
    bool sof, drdf, lf;
  } table[] = {
      {"MATS", false, false, false},
      {"MATS+", false, false, false},
      {"MATS++", true, false, false},
      {"March X", false, false, false},
      {"March Y", true, false, false},
      {"March C", false, false, false},
      {"March C (orig)", false, false, false},
      {"March U", true, false, false},
      {"March LR", true, false, true},
      {"March A", false, false, true},
      {"March B", true, false, true},
      {"March SS", false, true, false},
      {"March G", true, false, true},
      {"March C+", true, false, false},
      {"March C++", true, true, false},
      {"March A+", true, false, true},
      {"March A++", true, true, true},
  };
  for (const auto& row : table) {
    SCOPED_TRACE(row.name);
    const auto proof = lint::prove_coverage(march::by_name(row.name));
    const auto guaranteed = [&proof](memsim::FaultClass cls) {
      const auto* p = proof.find(cls);
      EXPECT_NE(p, nullptr);
      return p != nullptr && p->guaranteed;
    };
    EXPECT_EQ(guaranteed(memsim::FaultClass::SOF), row.sof);
    EXPECT_TRUE(guaranteed(memsim::FaultClass::RDF));
    EXPECT_EQ(guaranteed(memsim::FaultClass::DRDF), row.drdf);
    EXPECT_EQ(guaranteed(memsim::FaultClass::LF), row.lf);
  }
}

// ---------------------------------------------------------------------------
// Translation validation: the round-trip gate lift(assemble(A)) == A /
// lift(compile(A)) == A over the whole library, on both architectures and
// both microcode encodings.

lint::LiftOptions lift_options(std::uint64_t pause_ns) {
  lint::LiftOptions options;
  if (pause_ns != 0) options.pause_ns = pause_ns;
  return options;
}

TEST(RoundTrip, EveryLibraryAlgorithmSurvivesUcodeAssembly) {
  for (const auto& alg : march::all_algorithms()) {
    for (const bool symmetric : {true, false}) {
      SCOPED_TRACE(alg.name() + (symmetric ? " (folded)" : " (unfolded)"));
      const auto r = mbist_ucode::assemble(
          alg, {.symmetric_encoding = symmetric, .emit_loop_tail = true});
      const auto lifted =
          lint::lift_ucode(r.program, lift_options(r.pause_ns));
      ASSERT_TRUE(lifted.ok) << lifted.why;
      EXPECT_TRUE(lifted.full_structure());
      const auto verdict = lint::check_equivalence(lifted, alg);
      EXPECT_EQ(verdict.kind, lint::EquivKind::Equivalent)
          << verdict.detail << "\n"
          << lifted.algorithm.to_string();
    }
  }
}

TEST(RoundTrip, EveryMappableAlgorithmSurvivesPfsmCompilation) {
  int mappable = 0;
  for (const auto& alg : march::all_algorithms()) {
    if (!mbist_pfsm::is_mappable(alg)) continue;
    ++mappable;
    SCOPED_TRACE(alg.name());
    const auto r = mbist_pfsm::compile(alg);
    const auto lifted = lint::lift_pfsm(r.program, lift_options(r.pause_ns));
    ASSERT_TRUE(lifted.ok) << lifted.why;
    EXPECT_TRUE(lifted.full_structure());
    const auto verdict = lint::check_equivalence(lifted, alg);
    EXPECT_EQ(verdict.kind, lint::EquivKind::Equivalent)
        << verdict.detail << "\n"
        << lifted.algorithm.to_string();
  }
  EXPECT_GT(mappable, 0);
}

TEST(RoundTrip, LoopTailAbsenceIsReportedNotFatal) {
  const auto alg = march::march_c();
  const auto r = mbist_ucode::assemble(alg, {.symmetric_encoding = true,
                                             .emit_loop_tail = false});
  const auto lifted = lint::lift_ucode(r.program);
  ASSERT_TRUE(lifted.ok) << lifted.why;
  EXPECT_FALSE(lifted.has_data_loop);
  EXPECT_FALSE(lifted.has_port_loop);
  EXPECT_FALSE(lifted.full_structure());
  // The single pass still applies March C, so equivalence holds.
  EXPECT_EQ(lint::check_equivalence(lifted, alg).kind,
            lint::EquivKind::Equivalent);
}

TEST(Equiv, CanonicalizeRewritesAnyToUp) {
  const auto canon = lint::canonicalize(march::march_c());
  for (const auto& e : canon.elements())
    EXPECT_NE(e.order, march::AddressOrder::Any);
  EXPECT_EQ(canon.name(), march::march_c().name());
}

TEST(Equiv, SeededMiscompilesAreRejectedWithATrace) {
  lint::LintOptions options;
  options.against = "March C";
  for (const char* file :
       {"repeat_bad_mask.ucode.hex", "dropped_element.ucode.hex"}) {
    SCOPED_TRACE(file);
    const auto report = lint::lint_text(read_case(file), file, options);
    EXPECT_TRUE(report.has_code("EQ02")) << lint::format_text(report);
    EXPECT_TRUE(report.has_errors());
    // The diagnostic embeds the counterexample op trace.
    const auto text = lint::format_text(report);
    EXPECT_NE(text.find("diverges"), std::string::npos) << text;
    EXPECT_NE(text.find("both apply"), std::string::npos) << text;
  }

  options.against = "MATS+";
  const auto swapped = lint::lint_text(read_case("swapped_order.pfsm.hex"),
                                       "swapped_order", options);
  EXPECT_TRUE(swapped.has_code("EQ02")) << lint::format_text(swapped);

  options.against = "March C";
  const auto unliftable = lint::lint_text(read_case("unliftable.ucode.hex"),
                                          "unliftable", options);
  EXPECT_TRUE(unliftable.has_code("EQ01")) << lint::format_text(unliftable);
  EXPECT_TRUE(unliftable.has_errors());
}

TEST(Equiv, FaithfulImagesProveEquivalent) {
  lint::LintOptions options;
  options.against = "March C";
  const auto hex = mbist_ucode::assemble(march::march_c()).program
                       .to_hex_text();
  const auto report = lint::lint_text(hex, "march_c", options);
  EXPECT_TRUE(report.has_code("EQ04")) << lint::format_text(report);
  EXPECT_FALSE(report.has_errors()) << lint::format_text(report);

  options.against = "MATS+";
  const auto pfsm_hex =
      mbist_pfsm::compile(march::mats_plus()).program.to_hex_text();
  const auto preport = lint::lint_text(pfsm_hex, "mats_plus", options);
  EXPECT_TRUE(preport.has_code("EQ04")) << lint::format_text(preport);
  EXPECT_FALSE(preport.has_errors()) << lint::format_text(preport);
}

TEST(Equiv, AgainstSourceMayBeInlineDsl) {
  lint::LintOptions options;
  options.against = "any(w0); up(r0,w1); up(r1,w0); down(r0,w1); "
                    "down(r1,w0); any(r0)";
  const auto hex = mbist_ucode::assemble(march::march_c()).program
                       .to_hex_text();
  const auto report = lint::lint_text(hex, "march_c", options);
  EXPECT_TRUE(report.has_code("EQ04")) << lint::format_text(report);
}

TEST(Equiv, MissingLoopTailWarnsEq03) {
  lint::LintOptions options;
  options.against = "March C";
  const auto hex = mbist_ucode::assemble(march::march_c(),
                                         {.symmetric_encoding = true,
                                          .emit_loop_tail = false})
                       .program.to_hex_text();
  const auto report = lint::lint_text(hex, "single_pass", options);
  EXPECT_TRUE(report.has_code("EQ03")) << lint::format_text(report);
  EXPECT_TRUE(report.has_code("EQ04")) << lint::format_text(report);
}

TEST(Equiv, AgainstMisusesAreEq00) {
  lint::LintOptions options;
  options.against = "March C";
  // --against a march algorithm input: nothing to lift.
  EXPECT_TRUE(lint::lint_text("March C", "m", options).has_code("EQ00"));
  // --against a chip file input.
  EXPECT_TRUE(lint::lint_text("soc x\nmem a addr_bits=4 seed=1\n", "c",
                              options)
                  .has_code("EQ00"));
  // An unresolvable source.
  options.against = "March Zeta";
  const auto hex = mbist_ucode::assemble(march::march_c()).program
                       .to_hex_text();
  EXPECT_TRUE(lint::lint_text(hex, "u", options).has_code("EQ00"));
}

// ---------------------------------------------------------------------------
// Mechanical autofix (`pmbist lint --fix`).

TEST(Fix, DropsUcodeDeadCodeAndRelintsClean) {
  auto program =
      mbist_ucode::MicrocodeProgram::from_hex_text(read_case(
          "dead_code.ucode.hex"));
  ASSERT_TRUE(lint::lint_ucode(program).has_errors());
  const auto before = program.instructions().size();
  const auto outcome = lint::fix_ucode(program);
  EXPECT_TRUE(outcome.changed);
  EXPECT_NE(outcome.summary.find("unreachable"), std::string::npos)
      << outcome.summary;
  EXPECT_LT(program.instructions().size(), before);
  EXPECT_TRUE(lint::lint_ucode(program).empty())
      << lint::format_text(lint::lint_ucode(program));
}

TEST(Fix, DropsPfsmUnusedTrailingRows) {
  auto compiled = mbist_pfsm::compile(march::mats_plus()).program;
  auto rows = compiled.instructions();
  mbist_pfsm::PfsmInstruction extra;  // an unused row after PORT_LOOP
  rows.push_back(extra);
  mbist_pfsm::PfsmProgram program{"padded", rows};
  ASSERT_FALSE(lint::lint_pfsm(program).empty());
  const auto outcome = lint::fix_pfsm(program);
  EXPECT_TRUE(outcome.changed);
  EXPECT_NE(outcome.summary.find("trailing"), std::string::npos)
      << outcome.summary;
  EXPECT_EQ(program.instructions().size(), compiled.instructions().size());
  EXPECT_TRUE(lint::lint_pfsm(program).empty());
}

TEST(Fix, FixPreservesTheLiftedAlgorithm) {
  auto program = mbist_ucode::MicrocodeProgram::from_hex_text(
      read_case("dead_code.ucode.hex"));
  const auto before = lint::lift_ucode(program);
  (void)lint::fix_ucode(program);
  const auto after = lint::lift_ucode(program);
  ASSERT_TRUE(before.ok && after.ok);
  EXPECT_EQ(before.algorithm.elements(), after.algorithm.elements());
}

TEST(Fix, FixTextHandlesEveryInputKind) {
  // A fixable image: rewritten text must parse and lint clean.
  const auto fixed = lint::fix_text(read_case("dead_code.ucode.hex"), "u");
  EXPECT_TRUE(fixed.changed);
  EXPECT_TRUE(lint::lint_text(fixed.text, "u").empty());

  // Already-clean images report no mechanical fix.
  const auto clean_hex =
      mbist_ucode::assemble(march::march_c()).program.to_hex_text();
  const auto clean = lint::fix_text(clean_hex, "u");
  EXPECT_FALSE(clean.changed);

  // Library algorithms are canonical; the march fixer never rewrites them.
  const auto march_fix = lint::fix_text("March C", "m");
  EXPECT_FALSE(march_fix.changed);
  EXPECT_NE(march_fix.summary.find("canonical"), std::string::npos)
      << march_fix.summary;

  // Profiles have no mechanical subset.
  const auto profile_fix =
      lint::fix_text("profile p\nwindow a start=0 end=10\n", "p");
  EXPECT_FALSE(profile_fix.changed);
  EXPECT_NE(profile_fix.summary.find("semantic"), std::string::npos)
      << profile_fix.summary;

  // Unparseable images are reported, not thrown.
  const auto broken =
      lint::fix_text("; pmbist microcode image v1\nxyz\n", "u");
  EXPECT_FALSE(broken.changed);
  EXPECT_NE(broken.summary.find("cannot fix"), std::string::npos)
      << broken.summary;
}

// ---------------------------------------------------------------------------
// Diagnostics engine.

TEST(Diagnostics, RegistryIsWellFormed) {
  EXPECT_GE(lint::all_codes().size(), 30u);
  for (const auto& info : lint::all_codes()) {
    EXPECT_EQ(info.code.size(), 4u) << info.code;
    EXPECT_FALSE(info.summary.empty()) << info.code;
    EXPECT_EQ(lint::find_code(info.code), &info);
    EXPECT_EQ(lint::severity_of(info.code), info.severity);
  }
  EXPECT_EQ(lint::find_code("ZZ99"), nullptr);
  EXPECT_EQ(lint::severity_of("ZZ99"), lint::Severity::Error);
}

TEST(Diagnostics, ReportCountsAndRenderers) {
  lint::Report report;
  report.add("MA03", "unit_a", 2, "impossible read", "fix the data");
  report.add("MA04", "unit_a", -1, "odd pause");
  EXPECT_TRUE(report.has_errors());
  EXPECT_TRUE(report.has_code("MA03"));
  EXPECT_FALSE(report.has_code("MA05"));
  EXPECT_EQ(report.count(lint::Severity::Error), 1);
  EXPECT_EQ(report.count(lint::Severity::Warning), 1);

  const auto text = lint::format_text(report);
  EXPECT_NE(text.find("error[MA03] unit_a:2: impossible read"),
            std::string::npos);
  EXPECT_NE(text.find("hint: fix the data"), std::string::npos);
  // index -1 renders without a :index segment.
  EXPECT_NE(text.find("warning[MA04] unit_a: odd pause"), std::string::npos);

  const auto json = lint::format_json(report);
  EXPECT_NE(json.find("\"code\":\"MA03\""), std::string::npos);
  EXPECT_NE(json.find("\"index\":2"), std::string::npos);
  EXPECT_NE(json.find("\"errors\":1"), std::string::npos);
  EXPECT_NE(json.find("\"warnings\":1"), std::string::npos);
}

TEST(Diagnostics, JsonEscapesSpecials) {
  lint::Report report;
  report.add("MA00", "a\"b\\c", -1, "line1\nline2");
  const auto json = lint::format_json(report);
  EXPECT_NE(json.find("a\\\"b\\\\c"), std::string::npos);
  EXPECT_NE(json.find("line1\\nline2"), std::string::npos);
}

// ---------------------------------------------------------------------------
// March pass.

TEST(MarchLint, CleanLibraryAlgorithmsHaveNoFindings) {
  for (const auto& alg : march::all_algorithms()) {
    const auto report = lint::lint_march(alg);
    EXPECT_FALSE(report.has_errors()) << alg.name() << "\n"
                                      << lint::format_text(report);
    // Every library algorithm guarantees SAF, so MA06 never fires.
    EXPECT_FALSE(report.has_code("MA06")) << alg.name();
    EXPECT_TRUE(report.has_code("MA05")) << alg.name();
  }
}

TEST(MarchLint, CraftedDefectsEmitTheirCodes) {
  const auto lint_dsl = [](const char* dsl) {
    return lint::lint_march(march::parse(dsl, "t"));
  };
  EXPECT_TRUE(lint_dsl("up(r0); up(w0)").has_code("MA01"));
  EXPECT_TRUE(lint_dsl("up(w0); down(w1)").has_code("MA02"));
  EXPECT_TRUE(lint_dsl("up(w0); up(r1)").has_code("MA03"));
  EXPECT_TRUE(lint_dsl("any(w0); pause(100ns); any(r0); pause(200ns); any(r0)")
                  .has_code("MA04"));
  EXPECT_TRUE(lint_dsl("up(w0); up(r0)").has_code("MA06"));
}

// ---------------------------------------------------------------------------
// Program passes (ucode + pFSM), including the on-disk corpus the CLI
// WILL_FAIL tests exercise end to end.

struct CorpusCase {
  const char* file;
  const char* code;
};

TEST(ProgramLint, CorpusCasesEmitTheirStableCodes) {
  const CorpusCase cases[] = {
      {"dead_code.ucode.hex", "UC03"},
      {"runs_off_end.ucode.hex", "UC04"},
      {"empty_repeat.ucode.hex", "UC05"},
      {"nested_repeat.ucode.hex", "UC05"},
      {"no_reads.ucode.hex", "UC06"},
      {"oversized.ucode.hex", "UC02"},
      {"deadlock.pfsm.hex", "PF04"},
      {"no_port_loop.pfsm.hex", "PF05"},
      {"dup_mem.chip", "CH01"},
      {"unknown_mem.chip", "CH03"},
      {"infeasible_power.chip", "CH07"},
      {"inconsistent.march", "MA03"},
  };
  for (const auto& c : cases) {
    SCOPED_TRACE(c.file);
    const auto report = lint_case(c.file);
    EXPECT_TRUE(report.has_code(c.code)) << lint::format_text(report);
    EXPECT_TRUE(report.has_errors());
  }
}

TEST(ProgramLint, AssembledLibraryProgramsAreClean) {
  for (const auto& alg : march::all_algorithms()) {
    const auto r = mbist_ucode::assemble(alg);
    const auto report = lint::lint_ucode(r.program, {.storage_depth = 32});
    EXPECT_FALSE(report.has_errors()) << alg.name() << "\n"
                                      << lint::format_text(report);
    EXPECT_EQ(report.count(lint::Severity::Warning), 0)
        << alg.name() << "\n" << lint::format_text(report);
  }
}

TEST(ProgramLint, CompiledPfsmProgramsAreClean) {
  for (const auto& alg : march::all_algorithms()) {
    if (!mbist_pfsm::is_mappable(alg)) continue;
    const auto r = mbist_pfsm::compile(alg);
    const auto report = lint::lint_pfsm(r.program, {.buffer_depth = 16});
    EXPECT_FALSE(report.has_errors()) << alg.name() << "\n"
                                      << lint::format_text(report);
    EXPECT_EQ(report.count(lint::Severity::Warning), 0)
        << alg.name() << "\n" << lint::format_text(report);
  }
}

TEST(ProgramLint, RoundTripThroughHexTextIsClean) {
  const auto r = mbist_ucode::assemble(march::march_c());
  const auto again =
      mbist_ucode::MicrocodeProgram::from_hex_text(r.program.to_hex_text());
  EXPECT_EQ(again.image(), r.program.image());
  EXPECT_EQ(again.name(), r.program.name());
  EXPECT_TRUE(lint::lint_ucode(again).empty());

  const auto p = mbist_pfsm::compile(march::mats_plus());
  const auto pagain =
      mbist_pfsm::PfsmProgram::from_hex_text(p.program.to_hex_text());
  EXPECT_EQ(pagain.image(), p.program.image());
  EXPECT_EQ(pagain.name(), p.program.name());
  EXPECT_TRUE(lint::lint_pfsm(pagain).empty());
}

TEST(ProgramLint, Pf03ModeRangeIsApiOnlyAndDetected) {
  // The hex encoding holds the mode in 3 bits, so PF03 cannot appear from
  // any on-disk image — it guards programs built directly in C++.
  const auto* info = lint::find_code("PF03");
  ASSERT_NE(info, nullptr);
  EXPECT_TRUE(info->api_only);

  mbist_pfsm::PfsmInstruction component;
  component.mode = 9;  // outside SM0..SM7
  mbist_pfsm::PfsmInstruction data_loop;
  data_loop.ctrl = true;
  mbist_pfsm::PfsmInstruction port_loop;
  port_loop.ctrl = true;
  port_loop.ctrl_op = true;
  const mbist_pfsm::PfsmProgram program{"bad_mode",
                                        {component, data_loop, port_loop}};
  const auto report = lint::lint_pfsm(program);
  EXPECT_TRUE(report.has_code("PF03")) << lint::format_text(report);
  EXPECT_TRUE(report.has_errors());
}

// ---------------------------------------------------------------------------
// Control-flow graph analysis (lint/cfg.h) and the CFG-based lifter: block
// recovery, dominator/loop structure, the LT rejection codes, and the
// strict-superset guarantee (every shape the old pattern-matcher accepted
// still lifts; body-equivalent shapes it rejected now lift too).

std::string ucode_hex(std::initializer_list<unsigned> words,
                      const char* name = "crafted") {
  std::string text = "; pmbist microcode image v1\n; name: ";
  text += name;
  text += '\n';
  char buf[8];
  for (const unsigned w : words) {
    std::snprintf(buf, sizeof buf, "%03x\n", w);
    text += buf;
  }
  return text;
}

mbist_ucode::MicrocodeProgram ucode_image(std::initializer_list<unsigned> w,
                                          const char* name = "crafted") {
  return mbist_ucode::MicrocodeProgram::from_hex_text(ucode_hex(w, name));
}

TEST(Cfg, RecoversBlocksDominatorsAndLoopsOfAssembledImages) {
  const auto r = mbist_ucode::assemble(march::march_c());
  const auto cfg = lint::build_ucode_cfg(r.program);
  EXPECT_TRUE(cfg.reducible());
  // Assembled images have no dead code: every instruction is reachable.
  for (std::size_t i = 0; i < cfg.reachable_insn.size(); ++i)
    EXPECT_TRUE(cfg.reachable_insn[i]) << "instruction " << i;
  // The entry block dominates everything; March C has cell loops, a data
  // loop and a port loop, so natural loops must have been recovered.
  ASSERT_FALSE(cfg.rpo.empty());
  const int entry = cfg.block_of[0];
  for (const int b : cfg.rpo) EXPECT_TRUE(cfg.dominates(entry, b));
  EXPECT_FALSE(cfg.loops.empty());
  for (const auto& loop : cfg.loops) {
    // Every loop body is dominated by its header (natural-loop property).
    for (const int b : loop.body) EXPECT_TRUE(cfg.dominates(loop.header, b));
  }
}

TEST(Cfg, EveryLibraryImageIsReducible) {
  for (const auto& alg : march::all_algorithms()) {
    for (const bool symmetric : {true, false}) {
      SCOPED_TRACE(alg.name() + (symmetric ? " (folded)" : " (unfolded)"));
      const auto r = mbist_ucode::assemble(
          alg, {.symmetric_encoding = symmetric, .emit_loop_tail = true});
      EXPECT_TRUE(lint::build_ucode_cfg(r.program).reducible());
    }
    if (!mbist_pfsm::is_mappable(alg)) continue;
    const auto p = mbist_pfsm::compile(alg);
    EXPECT_TRUE(lint::build_pfsm_cfg(p.program).reducible()) << alg.name();
  }
}

TEST(Cfg, SyntheticIrreducibleRegionIsFlagged) {
  // 0 -> {1, 2}, 1 -> {2}, 2 -> {1}: the 1 <-> 2 cycle has two entries, so
  // neither node dominates the other and no natural loop explains the
  // retreating edge.  No controller image can encode this shape (every
  // backward flow targets 0, 1 or the branch register, all of which
  // dominate their uses) — LT01 is pinned through the graph API instead.
  const auto cfg = lint::build_cfg({{1, 2}, {2}, {1}});
  EXPECT_FALSE(cfg.reducible());
  ASSERT_FALSE(cfg.irreducible_edges.empty());
  EXPECT_TRUE(cfg.loops.empty());
  const auto* info = lint::find_code("LT01");
  ASSERT_NE(info, nullptr);
  EXPECT_TRUE(info->api_only);
  EXPECT_EQ(info->severity, lint::Severity::Error);

  // A self-loop with a second entry is still reducible (the header
  // dominates itself): 0 -> {1}, 1 -> {1, 2}, 2 -> {}.
  const auto self_loop = lint::build_cfg({{1}, {1, 2}, {}});
  EXPECT_TRUE(self_loop.reducible());
  ASSERT_EQ(self_loop.loops.size(), 1u);
}

TEST(Cfg, BranchValuesTrackLoopCellTargetsExactly) {
  // 141 (LOOP_SELF) saves branch = 1; 021/048 chain; 0b1 (LOOP_CELL) loops
  // back to the saved 1, not to its lexical predecessor.
  const auto program = ucode_image({0x141, 0x021, 0x048, 0x0b1, 0x380});
  const auto values = lint::ucode_branch_values(program.instructions());
  ASSERT_EQ(values.size(), 5u);
  EXPECT_EQ(values[3], (std::vector<int>{1}));
  const auto succ = lint::ucode_successors(program.instructions());
  EXPECT_EQ(succ[3], (std::vector<int>{1, 4}));
}

TEST(Lifter, StrictSupersetFormsNowLift) {
  struct Form {
    const char* label;
    std::initializer_list<unsigned> words;
    const char* want;  // march DSL the image must realize
  };
  const Form forms[] = {
      // No-op NEXT padding between the data loop and the port loop.
      {"padded", {0x141, 0x121, 0x284, 0x000, 0x300}, "up(w0); up(r0)"},
      // A no-op cell loop (address stride) between two op groups.
      {"nop stride",
       {0x141, 0x001, 0x080, 0x121, 0x284, 0x300},
       "up(w0); up(r0)"},
      // A no-op LOOP_SELF sweep after the data loop.
      {"trailing sweep",
       {0x141, 0x121, 0x284, 0x100, 0x300},
       "up(w0); up(r0)"},
      // No-op padding falling into a masked Repeat row.
      {"masked repeat",
       {0x141, 0x121, 0x000, 0x19a, 0x284, 0x300},
       "up(w0); up(r0); down(r1)"},
  };
  for (const auto& f : forms) {
    SCOPED_TRACE(f.label);
    const auto lifted = lint::lift_ucode(ucode_image(f.words, f.label));
    ASSERT_TRUE(lifted.ok) << lifted.why;
    EXPECT_TRUE(lifted.full_structure());
    const auto verdict =
        lint::check_equivalence(lifted, march::parse(f.want, "want"));
    EXPECT_EQ(verdict.kind, lint::EquivKind::Equivalent)
        << verdict.detail << "\n"
        << lifted.algorithm.to_string();
    // The forms lint clean too: no structural error is left to report.
    EXPECT_FALSE(lint::lint_ucode(ucode_image(f.words, f.label)).has_errors());
  }
}

TEST(Lifter, RejectionsCarryStableCodes) {
  struct Case {
    const char* label;
    std::initializer_list<unsigned> words;
    const char* code;
  };
  const Case cases[] = {
      // Cell loop whose body re-runs the data-background loop row.
      {"body crosses control", {0x141, 0x121, 0x284, 0x048, 0x0b1}, "LT02"},
      // Nested Repeat livelocks the single repeat bit.
      {"livelock", {0x141, 0x121, 0x182, 0x182, 0x380}, "LT03"},
      // NEXT with addr-inc inside an op group.
      {"mid-element step", {0x141, 0x021, 0x0c9, 0x380}, "LT04"},
      // Real op falls into a control row without a cell loop.
      {"unclosed group", {0x141, 0x020, 0x380}, "LT05"},
      // Operation after the data-background loop.
      {"op after data loop", {0x141, 0x121, 0x284, 0x121, 0x380}, "LT06"},
      // Second data-background loop.
      {"second data loop", {0x141, 0x121, 0x284, 0x284, 0x380}, "LT07"},
  };
  for (const auto& c : cases) {
    SCOPED_TRACE(c.label);
    const auto program = ucode_image(c.words, c.label);
    const auto lifted = lint::lift_ucode(program);
    ASSERT_FALSE(lifted.ok);
    EXPECT_EQ(lifted.code, c.code) << lifted.why;
    EXPECT_FALSE(lifted.why.empty());
    // The structure pass routes the same code through the diagnostics
    // engine, so `--json` consumers can key on it.
    const auto report = lint::lint_ucode(program);
    EXPECT_TRUE(report.has_code(c.code)) << lint::format_text(report);
    EXPECT_TRUE(report.has_errors());
  }
}

TEST(Lifter, CellLoopRejectionComesWithBothPassTraces) {
  // After the data loop the branch register is stale (row 2): the cell
  // loop at row 4 loops back across the LOOP_DATA row, so the loop-back
  // pass cannot equal the first-cell pass.  The rejection names both.
  const auto program = ucode_image({0x141, 0x121, 0x284, 0x048, 0x0b1});
  const auto lifted = lint::lift_ucode(program);
  ASSERT_FALSE(lifted.ok);
  EXPECT_EQ(lifted.code, "LT02");
  ASSERT_EQ(lifted.trace.size(), 2u);
  EXPECT_NE(lifted.trace[0].find("first-cell pass"), std::string::npos)
      << lifted.trace[0];
  EXPECT_NE(lifted.trace[1].find("loop-back pass"), std::string::npos)
      << lifted.trace[1];
  // The trace reaches the rendered diagnostic.
  const auto text = lint::format_text(lint::lint_ucode(program));
  EXPECT_NE(text.find("first-cell pass"), std::string::npos) << text;
}

TEST(Lifter, RejectionCodeAndTraceFlowThroughEquiv) {
  const auto program = ucode_image({0x141, 0x121, 0x284, 0x048, 0x0b1});
  const auto lifted = lint::lift_ucode(program);
  ASSERT_FALSE(lifted.ok);
  const auto verdict = lint::check_equivalence(lifted, march::march_c());
  EXPECT_EQ(verdict.kind, lint::EquivKind::Unliftable);
  EXPECT_EQ(verdict.code, lifted.code);
  EXPECT_EQ(verdict.trace, lifted.trace);

  lint::LintOptions options;
  options.against = "March C";
  const auto report = lint::lint_text(program.to_hex_text(), "u", options);
  EXPECT_TRUE(report.has_code("EQ01")) << lint::format_text(report);
  const auto text = lint::format_text(report);
  EXPECT_NE(text.find("not liftable"), std::string::npos) << text;
  EXPECT_NE(text.find("LT02"), std::string::npos) << text;
}

TEST(ProgramLint, UnreachableBlockIsLt00AndFixRemovesItExactly) {
  // Row 3 sits after TERMINATE: a whole basic block no flow edge reaches.
  auto program = ucode_image({0x141, 0x121, 0x380, 0x048});
  const auto report = lint::lint_ucode(program);
  EXPECT_TRUE(report.has_code("LT00")) << lint::format_text(report);
  EXPECT_TRUE(report.has_code("UC03")) << lint::format_text(report);

  const auto before = lint::lift_ucode(program);
  ASSERT_TRUE(before.ok) << before.why;
  const auto outcome = lint::fix_ucode(program);
  EXPECT_TRUE(outcome.changed);
  EXPECT_EQ(program.size(), 3);
  const auto after = lint::lift_ucode(program);
  ASSERT_TRUE(after.ok) << after.why;
  EXPECT_EQ(before.algorithm.elements(), after.algorithm.elements());
  EXPECT_FALSE(lint::lint_ucode(program).has_code("LT00"));
  EXPECT_FALSE(lint::lint_ucode(program).has_code("UC03"));
}

TEST(ProgramLint, HandwrittenExamplesLintLiftValidateAndFixCleanly) {
  struct Example {
    const char* file;
    const char* want;  // march DSL the image must realize
  };
  const Example examples[] = {
      {"examples/handwritten_padded.ucode.hex", "up(w0); up(r0)"},
      {"examples/handwritten_nop_stride.ucode.hex", "up(w0); up(r0)"},
      {"examples/handwritten_trailing_sweep.ucode.hex", "up(w0); up(r0)"},
      {"examples/handwritten_masked_repeat.ucode.hex",
       "up(w0); up(r0); down(r1)"},
  };
  for (const auto& ex : examples) {
    SCOPED_TRACE(ex.file);
    const auto text = read_repo_file(ex.file);
    // Lints without errors (UC08 no-op-sweep warnings are the point of the
    // shapes and stay warnings).
    const auto report = lint::lint_text(text, ex.file);
    EXPECT_FALSE(report.has_errors()) << lint::format_text(report);

    // Lifts to the documented algorithm with full loop structure.
    auto program = mbist_ucode::MicrocodeProgram::from_hex_text(text);
    const auto lifted = lint::lift_ucode(program);
    ASSERT_TRUE(lifted.ok) << lifted.why;
    EXPECT_TRUE(lifted.full_structure());
    EXPECT_EQ(lint::check_equivalence(lifted, march::parse(ex.want, "want"))
                  .kind,
              lint::EquivKind::Equivalent)
        << lifted.algorithm.to_string();

    // `--against` validation goes through the driver end to end.
    lint::LintOptions options;
    options.against = ex.want;
    const auto against = lint::lint_text(text, ex.file, options);
    EXPECT_TRUE(against.has_code("EQ04")) << lint::format_text(against);
    EXPECT_FALSE(against.has_errors()) << lint::format_text(against);

    // --fix round-trip under the semantic-diff guarantee: every row is
    // reachable (CFG-exact removal finds nothing), the no-op-sweep fixer
    // may compact the padding, and the lifted algorithm must survive.
    const auto outcome = lint::fix_ucode(program);
    EXPECT_EQ(outcome.summary.find("unreachable"), std::string::npos)
        << outcome.summary;
    const auto after = lint::lift_ucode(program);
    ASSERT_TRUE(after.ok) << after.why;
    EXPECT_EQ(lifted.algorithm.elements(), after.algorithm.elements());
    EXPECT_FALSE(lint::lint_ucode(program).has_errors())
        << lint::format_text(lint::lint_ucode(program));
  }
}

TEST(Diagnostics, LtRegistryEntriesAreWellFormed) {
  for (const char* code :
       {"LT00", "LT02", "LT03", "LT04", "LT05", "LT06", "LT07"}) {
    const auto* info = lint::find_code(code);
    ASSERT_NE(info, nullptr) << code;
    EXPECT_EQ(info->severity, lint::Severity::Error) << code;
    EXPECT_FALSE(info->api_only) << code;
  }
}

// ---------------------------------------------------------------------------
// Chip pass on the shipped example.

TEST(ChipLint, DemoChipHasNoErrors) {
  std::ifstream in{std::string{PMBIST_SOURCE_DIR} +
                   "/examples/soc_demo.chip"};
  ASSERT_TRUE(in.good());
  std::ostringstream text;
  text << in.rdbuf();
  const auto report = lint::lint_chip_text(text.str(), "soc_demo.chip");
  EXPECT_FALSE(report.has_errors()) << lint::format_text(report);
  // The demo deliberately pairs a TF defect with MATS+ (TF not guaranteed)
  // to exercise repair; the linter calls that out as an escape warning.
  EXPECT_TRUE(report.has_code("CH11")) << lint::format_text(report);
}

// ---------------------------------------------------------------------------
// Profile lint: FP00-FP06 on crafted inputs and the on-disk corpus.

TEST(ProfileLint, ParseErrorBecomesFP00) {
  const auto report =
      lint::lint_profile_text("profile p\nwindow m start=5\n", "t");
  EXPECT_TRUE(report.has_code("FP00")) << lint::format_text(report);
  EXPECT_TRUE(report.has_errors());
}

TEST(ProfileLint, CorpusCasesFireTheirStableCodes) {
  const auto overlap = lint::lint_profile_text(read_case("overlap.profile"),
                                               "overlap.profile");
  EXPECT_TRUE(overlap.has_code("FP01")) << lint::format_text(overlap);

  const auto zero = lint::lint_profile_text(read_case("zero_width.profile"),
                                            "zero_width.profile");
  EXPECT_TRUE(zero.has_code("FP02")) << lint::format_text(zero);

  const auto bus = lint::lint_profile_text(read_case("bus_zero.profile"),
                                           "bus_zero.profile");
  EXPECT_TRUE(bus.has_code("FP03")) << lint::format_text(bus);
}

TEST(ProfileLint, ChipCrossChecksFindUnknownAndUntestedMemories) {
  std::ifstream in{std::string{PMBIST_SOURCE_DIR} + "/examples/soc_demo.chip"};
  ASSERT_TRUE(in.good());
  std::ostringstream chip;
  chip << in.rdbuf();

  const auto report = lint::lint_profile_text(
      read_case("unknown_mem.profile"), "unknown_mem.profile", chip.str());
  // l3_cache is not a chip memory; every chip memory except icache has no
  // usable window at all.
  EXPECT_TRUE(report.has_code("FP04")) << lint::format_text(report);
  EXPECT_TRUE(report.has_code("FP05")) << lint::format_text(report);
  EXPECT_TRUE(report.has_errors());

  // Without the chip file the same profile is clean: cross-checks need it.
  const auto alone = lint::lint_profile_text(read_case("unknown_mem.profile"),
                                             "unknown_mem.profile");
  EXPECT_FALSE(alone.has_errors()) << lint::format_text(alone);
}

TEST(ProfileLint, WindowBeyondHorizonWarnsFP06) {
  const auto report = lint::lint_profile_text(
      "profile p\nhorizon 100\nwindow m start=100 end=200\n", "t");
  EXPECT_TRUE(report.has_code("FP06")) << lint::format_text(report);
  EXPECT_FALSE(report.has_errors()) << lint::format_text(report);
}

TEST(ProfileLint, DemoProfileIsCleanAgainstDemoChip) {
  std::ifstream chip_in{std::string{PMBIST_SOURCE_DIR} +
                        "/examples/soc_demo.chip"};
  std::ifstream prof_in{std::string{PMBIST_SOURCE_DIR} +
                        "/examples/soc_demo.profile"};
  ASSERT_TRUE(chip_in.good());
  ASSERT_TRUE(prof_in.good());
  std::ostringstream chip, prof;
  chip << chip_in.rdbuf();
  prof << prof_in.rdbuf();

  const auto report =
      lint::lint_profile_text(prof.str(), "soc_demo.profile", chip.str());
  EXPECT_TRUE(report.empty()) << lint::format_text(report);
}

TEST(ProfileLint, DriverRoutesProfilesAndRejectsAgainst) {
  // The generic driver sniffs profiles and runs the same pass.
  const auto report = lint::lint_text(read_case("overlap.profile"),
                                      "overlap.profile");
  EXPECT_TRUE(report.has_code("FP01")) << lint::format_text(report);

  // Equivalence checking is a march-only feature.
  lint::LintOptions options;
  options.against = "March C";
  const auto eq = lint::lint_text(read_case("overlap.profile"),
                                  "overlap.profile", options);
  EXPECT_TRUE(eq.has_code("EQ00")) << lint::format_text(eq);
}

// ---------------------------------------------------------------------------
// Driver: sniffing, never-throws, determinism.

TEST(Driver, DetectsEveryInputKind) {
  EXPECT_EQ(lint::detect_kind("March C"), lint::InputKind::March);
  EXPECT_EQ(lint::detect_kind("up(w0); up(r0)"), lint::InputKind::March);
  EXPECT_EQ(lint::detect_kind("# comment\nsoc x\nmem a addr_bits=4 seed=1\n"),
            lint::InputKind::Chip);
  EXPECT_EQ(lint::detect_kind("; pmbist microcode image v1\n141\n"),
            lint::InputKind::UcodeImage);
  EXPECT_EQ(lint::detect_kind("; pmbist pfsm image v1\n000\n"),
            lint::InputKind::PfsmImage);
  EXPECT_EQ(lint::detect_kind("profile p\nwindow m start=0 end=9\n"),
            lint::InputKind::Profile);
  EXPECT_EQ(lint::detect_kind("# idle spans\nbus_budget 2\n"),
            lint::InputKind::Profile);
  EXPECT_EQ(lint::detect_kind("{\"soc\":\"x\"}"), lint::InputKind::Chip);
  EXPECT_EQ(lint::detect_kind("schedule s\nsession a start=0 load=1 test=2\n"),
            lint::InputKind::SocSchedule);
  EXPECT_EQ(lint::detect_kind("# emitted\nfieldschedule f\n"),
            lint::InputKind::FieldSchedule);
  EXPECT_EQ(lint::detect_kind(""), lint::InputKind::March);
}

TEST(Driver, MalformedInputsBecomeParseDiagnosticsNotThrows) {
  EXPECT_TRUE(lint::lint_text("n@t a march", "u").has_code("MA00"));
  EXPECT_TRUE(lint::lint_text("; pmbist microcode image v1\nxyz\n", "u")
                  .has_code("UC00"));
  EXPECT_TRUE(lint::lint_text("; pmbist pfsm image v1\nzzz\n", "u")
                  .has_code("PF00"));
  EXPECT_TRUE(lint::lint_text("soc x\nfrobnicate\n", "u").has_code("CH02"));
}

TEST(Driver, MarchFilesMayCarryHashComments) {
  const auto report = lint::lint_text(
      "# March C in a file\nany(w0); up(r0,w1); up(r1,w0);\n"
      "down(r0,w1); down(r1,w0); any(r0)  # trailing comment\n",
      "commented.march");
  EXPECT_FALSE(report.has_errors()) << lint::format_text(report);
  EXPECT_TRUE(report.has_code("MA05"));
}

TEST(Driver, ReportsAreDeterministic) {
  const char* inputs[] = {
      "March C",
      "up(w0); up(r1)",
      "; pmbist microcode image v1\n141\n121\n",
      "soc x\nmem a addr_bits=4 seed=1\nassign b \"March C\" ucode\n",
  };
  for (const char* text : inputs) {
    const auto a = lint::lint_text(text, "unit");
    const auto b = lint::lint_text(text, "unit");
    EXPECT_EQ(a, b) << text;
  }
}

TEST(Driver, HonorsDepthOptions) {
  const std::string image = read_case("oversized.ucode.hex");
  lint::LintOptions options;
  options.storage_depth = 32;
  EXPECT_TRUE(lint::lint_text(image, "u", options).has_code("UC02"));
  options.storage_depth = 64;
  EXPECT_FALSE(lint::lint_text(image, "u", options).has_code("UC02"));

  const auto p = mbist_pfsm::compile(march::mats_plus());
  const auto hex = p.program.to_hex_text();
  options.buffer_depth = 4;
  EXPECT_TRUE(lint::lint_text(hex, "u", options).has_code("PF02"));
  options.buffer_depth = 16;
  EXPECT_FALSE(lint::lint_text(hex, "u", options).has_code("PF02"));
}

// ---------------------------------------------------------------------------
// Error-location contract: assembler, compiler and image loaders name the
// offending instruction / element / line.

TEST(ErrorLocations, AssemblerNamesThePauseElement) {
  const auto alg =
      march::parse("any(w0); pause(100ns); any(r0); pause(200ns); any(r0)",
                   "mixed_pauses");
  try {
    (void)mbist_ucode::assemble(alg);
    FAIL() << "expected AssembleError";
  } catch (const mbist_ucode::AssembleError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("element 3"), std::string::npos) << what;
    EXPECT_NE(what.find("200ns"), std::string::npos) << what;
    EXPECT_NE(what.find("100ns"), std::string::npos) << what;
  }
}

TEST(ErrorLocations, PfsmCompilerNamesTheElement) {
  const auto alg =
      march::parse("pause(5ns); any(w0); any(r0)", "leading_pause");
  try {
    (void)mbist_pfsm::compile(alg);
    FAIL() << "expected CompileError";
  } catch (const mbist_pfsm::CompileError& e) {
    EXPECT_NE(std::string{e.what()}.find("element 0"), std::string::npos)
        << e.what();
  }
}

TEST(ErrorLocations, ImageLoadersNameInstructionAndLine) {
  try {
    (void)mbist_ucode::MicrocodeProgram::from_hex_text(
        "; pmbist microcode image v1\n141\nxyz\n");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string{e.what()}.find("line 3"), std::string::npos)
        << e.what();
  }
  try {
    // 0x3e0: rw field 11 is reserved -> decode error on instruction 1.
    (void)mbist_ucode::MicrocodeProgram::from_image("bad", {0x141, 0x3e0});
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string{e.what()}.find("instruction 1"), std::string::npos)
        << e.what();
  }
  try {
    // 0x3ff exceeds the 9-bit pFSM encoding -> decode error, line named.
    (void)mbist_pfsm::PfsmProgram::from_hex_text(
        "; pmbist pfsm image v1\n000\n3ff\n");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("instruction 1"), std::string::npos) << what;
    EXPECT_NE(what.find("line 3"), std::string::npos) << what;
  }
}

TEST(ErrorLocations, LoadersAgreeOnTruncatedInput) {
  // The two hex loaders word their truncation errors identically modulo the
  // architecture token, so tooling that pattern-matches loader errors works
  // on both.  Pinned here; the messages live in the loaders' tails.
  const auto message = [](auto&& load) -> std::string {
    try {
      load();
      ADD_FAILURE() << "expected invalid_argument";
    } catch (const std::invalid_argument& e) {
      return e.what();
    }
    return {};
  };
  const auto unify = [](std::string s, const char* token) {
    const auto at = s.find(token);
    EXPECT_NE(at, std::string::npos) << s;
    if (at != std::string::npos) s.replace(at, std::string{token}.size(), "*");
    return s;
  };

  // Truncated before the header line.
  const auto u_header = message([] {
    (void)mbist_ucode::MicrocodeProgram::from_hex_text("141\n");
  });
  const auto p_header = message([] {
    (void)mbist_pfsm::PfsmProgram::from_hex_text("000\n");
  });
  EXPECT_EQ(unify(u_header, "microcode"), unify(p_header, "pfsm"))
      << u_header << "\nvs\n" << p_header;
  EXPECT_NE(u_header.find("1 line(s)"), std::string::npos) << u_header;

  // Truncated after the header line (no instructions survive).
  const auto u_empty = message([] {
    (void)mbist_ucode::MicrocodeProgram::from_hex_text(
        "; pmbist microcode image v1\n");
  });
  const auto p_empty = message([] {
    (void)mbist_pfsm::PfsmProgram::from_hex_text("; pmbist pfsm image v1\n");
  });
  EXPECT_EQ(u_empty, p_empty) << u_empty << "\nvs\n" << p_empty;
  EXPECT_EQ(u_empty, "image has no instructions (1 line(s) scanned)");
}

// ---------------------------------------------------------------------------
// Schedule certificates: the independent checker (lint/certify.h), the
// .schedule/.fieldsched formats, and the driver routing behind
// `pmbist lint --certify`.

soc::ChipFile example_chip() {
  return soc::parse_chip(read_repo_file("examples/soc_demo.chip"));
}

field::MissionProfile example_profile() {
  return field::parse_profile_text(
      read_repo_file("examples/soc_demo.profile"));
}

TEST(Certify, ComputedSocScheduleIsClean) {
  const auto chip = example_chip();
  const auto schedule =
      soc::Scheduler{}.compute_schedule(chip.description, chip.plan);
  ASSERT_FALSE(schedule.empty());
  const auto report =
      lint::certify_soc(chip.description, chip.plan, schedule);
  EXPECT_TRUE(report.empty()) << lint::format_text(report);
}

TEST(Certify, FoldedRetestScheduleIsClean) {
  // fold_retests queues the BISR second passes as scheduled sessions; the
  // certifier must accept them (including the retest-after-first-pass
  // precedence it checks for SC07).
  const auto chip = example_chip();
  const auto result = soc::run_soc(chip.description, chip.plan,
                                   {.jobs = 1, .fold_retests = true});
  bool any_retest = false;
  for (const auto& s : result.schedule) any_retest |= s.retest;
  EXPECT_TRUE(any_retest) << "demo chip should trigger BISR retests";
  const auto report =
      lint::certify_soc(chip.description, chip.plan, result.schedule);
  EXPECT_TRUE(report.empty()) << lint::format_text(report);
}

TEST(Certify, SeededSocCorruptionsFireTheirCodes) {
  const auto chip = example_chip();
  const auto base = soc::schedule_entries(
      soc::Scheduler{}.compute_schedule(chip.description, chip.plan));
  ASSERT_GE(base.size(), 8u);

  const auto certify = [&](std::vector<soc::ScheduleEntry> entries) {
    return lint::certify_soc(chip.description, chip.plan, entries);
  };
  const auto at = [&](const std::string& mem) -> std::size_t {
    for (std::size_t i = 0; i < base.size(); ++i)
      if (base[i].memory == mem) return i;
    ADD_FAILURE() << mem << " not scheduled";
    return 0;
  };

  // SC01: a session for a memory the chip does not have.
  auto unknown = base;
  unknown[0].memory = "phantom";
  EXPECT_TRUE(certify(unknown).has_code("SC01"));
  // SC01: the same memory tested twice in one pass.
  auto dup = base;
  dup.push_back(base[at("gpu_tile")]);
  EXPECT_TRUE(certify(dup).has_code("SC01"));
  // SC02: icache and dcache share the cpu_ctrl seat; forcing icache to
  // start at 0 overlaps dcache's session on that seat.
  auto seat = base;
  seat[at("icache")].start = seat[at("dcache")].start;
  EXPECT_TRUE(certify(seat).has_code("SC02"));
  // SC03: nic_fifo is seat-independent, but pulling it to cycle 0 pushes
  // the summed toggle weight past the 40-unit budget.
  auto power = base;
  power[at("nic_fifo")].start = 0;
  EXPECT_TRUE(certify(power).has_code("SC03"));
  // SC04: stored cycle counts disagree with the re-derived controller run.
  auto recost = base;
  recost[0].test += 1;
  EXPECT_TRUE(certify(recost).has_code("SC04"));
  // SC05: stored weight disagrees with the plan's effective weight.
  auto weight = base;
  weight[0].weight += 1.0;
  EXPECT_TRUE(certify(weight).has_code("SC05"));
  // SC06: an assigned memory silently dropped from the schedule.
  auto missing = base;
  missing.erase(missing.begin());
  EXPECT_TRUE(certify(missing).has_code("SC06"));
  // SC07: a retest of gpu_tile, where repair can never engage (no spares).
  auto no_repair = base;
  auto ghost = base[at("gpu_tile")];
  ghost.retest = true;
  no_repair.push_back(ghost);
  EXPECT_TRUE(certify(no_repair).has_code("SC07"));
  // SC07: a fuse_box retest that starts before its first pass finishes.
  auto early = base;
  auto retest = base[at("fuse_box")];
  retest.retest = true;
  early.push_back(retest);
  EXPECT_TRUE(certify(early).has_code("SC07"));
}

TEST(Certify, FieldSessionTableIsClean) {
  const auto chip = example_chip();
  const auto profile = example_profile();
  const auto report = field::run_field(chip.description, chip.plan, profile,
                                       {.jobs = 1});
  ASSERT_FALSE(report.sessions.empty());
  // Both overloads: the raw session table and the full report (which adds
  // the SC11 signature-discipline sweep).
  const auto table = lint::certify_field(
      chip.description, chip.plan, profile,
      field::field_schedule_entries(report.sessions));
  EXPECT_TRUE(table.empty()) << lint::format_text(table);
  const auto full =
      lint::certify_field(chip.description, chip.plan, profile, report);
  EXPECT_TRUE(full.empty()) << lint::format_text(full);
}

TEST(Certify, SeededFieldCorruptionsFireTheirCodes) {
  const auto chip = example_chip();
  const auto profile = example_profile();
  const auto report = field::run_field(chip.description, chip.plan, profile,
                                       {.jobs = 1});
  const auto base = field::field_schedule_entries(report.sessions);
  ASSERT_GE(base.size(), 4u);

  const auto certify = [&](std::vector<field::FieldScheduleEntry> entries) {
    return lint::certify_field(chip.description, chip.plan, profile,
                               entries);
  };

  // SC01: a burst for a memory outside the plan.
  auto unknown = base;
  unknown[0].session.memory = "phantom";
  EXPECT_TRUE(certify(unknown).has_code("SC01"));
  // SC07: pass 0 flagged as a BISR retest.
  auto retest = base;
  retest[0].session.retest = true;
  EXPECT_TRUE(certify(retest).has_code("SC07"));
  // SC08: a burst shifted past the horizon sits outside every window.
  auto outside = base;
  {
    auto& s = outside.back().session;
    const auto len = s.end_cycle - s.start_cycle;
    s.start_cycle = profile.horizon + 1000;
    s.end_cycle = s.start_cycle + len;
  }
  EXPECT_TRUE(certify(outside).has_code("SC08"));
  // SC09: breaking a resume chain (a later burst of some memory skips a
  // segment).  Find a memory with two bursts.
  auto chain = base;
  bool broke = false;
  for (std::size_t i = 1; i < chain.size() && !broke; ++i)
    for (std::size_t j = 0; j < i; ++j)
      if (chain[j].session.memory == chain[i].session.memory) {
        chain[i].session.segment_begin += 1;
        broke = true;
        break;
      }
  ASSERT_TRUE(broke) << "no memory needed a second burst";
  EXPECT_TRUE(certify(chain).has_code("SC09"));
  // SC10: more concurrent bursts than the profile's bus lanes.  Pile
  // bursts of distinct memories onto the first burst's span.
  auto bus = base;
  std::size_t piled = 1;
  for (std::size_t i = 1;
       i < bus.size() && piled <= profile.bus_budget; ++i) {
    if (bus[i].session.memory == bus[0].session.memory) continue;
    bus[i].session.start_cycle = bus[0].session.start_cycle;
    bus[i].session.end_cycle = bus[0].session.end_cycle;
    ++piled;
  }
  ASSERT_GT(piled, profile.bus_budget);
  EXPECT_TRUE(certify(bus).has_code("SC10"));
}

TEST(Certify, InterruptedPassWithSignatureIsSc11) {
  // SC11 is api_only: the on-disk table carries no signatures, so the
  // violation is only expressible through the FieldReport overload.
  const auto chip = example_chip();
  const auto profile = example_profile();
  auto report = field::run_field(chip.description, chip.plan, profile,
                                 {.jobs = 1});
  bool corrupted = false;
  for (auto& inst : report.instances) {
    for (auto& pass : inst.passes)
      if (pass.completed() && pass.signature.has_value()) {
        pass.state = bist::SessionState::Interrupted;
        corrupted = true;
        break;
      }
    if (corrupted) break;
  }
  ASSERT_TRUE(corrupted) << "no completed pass with a signature to corrupt";
  const auto cert =
      lint::certify_field(chip.description, chip.plan, profile, report);
  EXPECT_TRUE(cert.has_code("SC11")) << lint::format_text(cert);
  EXPECT_TRUE(lint::find_code("SC11")->api_only);
}

TEST(ScheduleIo, SocRoundTripAndErrorLines) {
  const auto chip = example_chip();
  const auto schedule =
      soc::Scheduler{}.compute_schedule(chip.description, chip.plan);
  const std::string text = soc::to_schedule_text("rt", schedule);
  const auto parsed = soc::parse_schedule_text(text);
  EXPECT_EQ(parsed.name, "rt");
  auto expected = soc::schedule_entries(schedule);
  ASSERT_EQ(parsed.entries.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    auto e = parsed.entries[i];
    e.line = -1;  // only the source location may differ
    EXPECT_EQ(e, expected[i]) << "entry " << i;
  }
  try {
    (void)soc::parse_schedule_text("schedule x\nsession a start=0\n");
    ADD_FAILURE() << "expected ScheduleError";
  } catch (const soc::ScheduleError& e) {
    EXPECT_NE(std::string{e.what()}.find("line 2"), std::string::npos)
        << e.what();
  }
}

TEST(ScheduleIo, FieldRoundTripAndErrorLines) {
  const auto chip = example_chip();
  const auto profile = example_profile();
  const auto report = field::run_field(chip.description, chip.plan, profile,
                                       {.jobs = 1});
  const std::string text =
      field::to_field_schedule_text("rt", report.sessions);
  const auto parsed = field::parse_field_schedule_text(text);
  EXPECT_EQ(parsed.name, "rt");
  ASSERT_EQ(parsed.entries.size(), report.sessions.size());
  for (std::size_t i = 0; i < report.sessions.size(); ++i)
    EXPECT_EQ(parsed.entries[i].session, report.sessions[i]) << "entry " << i;
  try {
    (void)field::parse_field_schedule_text(
        "fieldschedule x\nfsession a pass=0 seg=2..1 start=0 end=9 "
        "reload=0\n");
    ADD_FAILURE() << "expected FieldScheduleError";
  } catch (const field::FieldScheduleError& e) {
    EXPECT_NE(std::string{e.what()}.find("line 2"), std::string::npos)
        << e.what();
  }
}

TEST(Certify, DriverRoutesSchedulesAndRequiresContext) {
  const std::string chip_text = read_repo_file("examples/soc_demo.chip");
  const std::string profile_text =
      read_repo_file("examples/soc_demo.profile");
  const auto chip = soc::parse_chip(chip_text);
  const auto profile = field::parse_profile_text(profile_text);

  lint::LintOptions with_chip;
  with_chip.chip = chip_text;
  lint::LintOptions with_both = with_chip;
  with_both.profile = profile_text;
  lint::LintOptions certify_only;
  certify_only.certify = true;
  lint::LintOptions certify_chip = with_chip;
  certify_chip.certify = true;

  const std::string soc_text = soc::to_schedule_text(
      "s", soc::Scheduler{}.compute_schedule(chip.description, chip.plan));
  // Without a chip there is nothing to certify against: SC00, not a throw.
  EXPECT_TRUE(lint::lint_text(soc_text, "s").has_code("SC00"));
  // With the chip supplied the emitted schedule certifies clean.
  const auto ok = lint::lint_text(soc_text, "s", with_chip);
  EXPECT_TRUE(ok.empty()) << lint::format_text(ok);
  // Parse errors become SC00 with the offending line.
  const auto bad =
      lint::lint_text("schedule s\nsession ???\n", "s", with_chip);
  EXPECT_TRUE(bad.has_code("SC00")) << lint::format_text(bad);

  const auto field_report = field::run_field(chip.description, chip.plan,
                                             profile, {.jobs = 1});
  const std::string field_text =
      field::to_field_schedule_text("f", field_report.sessions);
  // A field schedule needs chip AND profile.
  EXPECT_TRUE(lint::lint_text(field_text, "f", with_chip).has_code("SC00"));
  const auto fok = lint::lint_text(field_text, "f", with_both);
  EXPECT_TRUE(fok.empty()) << lint::format_text(fok);

  // --certify on the chip and profile inputs themselves re-derives and
  // certifies the schedules behind them.
  const auto chip_cert = lint::lint_text(chip_text, "c", certify_only);
  EXPECT_FALSE(chip_cert.has_errors()) << lint::format_text(chip_cert);
  const auto prof_cert = lint::lint_text(profile_text, "p", certify_chip);
  EXPECT_FALSE(prof_cert.has_errors()) << lint::format_text(prof_cert);
  // A profile cannot be certified without its chip.
  EXPECT_TRUE(
      lint::lint_text(profile_text, "p", certify_only).has_code("SC00"));
}

TEST(ChipLint, JsonMirrorLintsIdenticallyToText) {
  // The JSON mirror must produce the same semantic findings as the text
  // chip it was generated from (CH01 is text-only by construction: JSON
  // objects cannot express a duplicate directive).
  const std::string text = read_repo_file("examples/soc_demo.chip");
  const auto chip = soc::parse_chip(text);
  const std::string json =
      soc::serialize_chip_json(chip.description, chip.plan);
  ASSERT_EQ(lint::detect_kind(json), lint::InputKind::Chip);

  const auto from_text = lint::lint_chip_text(text, "u");
  const auto from_json = lint::lint_chip_text(json, "u");
  auto codes = [](const lint::Report& r) {
    std::vector<std::string> out;
    for (const auto& d : r.diagnostics()) out.push_back(d.code);
    std::sort(out.begin(), out.end());
    return out;
  };
  EXPECT_EQ(codes(from_text), codes(from_json))
      << lint::format_text(from_text) << "\nvs\n"
      << lint::format_text(from_json);
  EXPECT_EQ(from_text.has_errors(), from_json.has_errors());
}

TEST(Diagnostics, JsonOrderingIsDeterministic) {
  // format_json sorts by (unit, code, index) regardless of emission
  // order; format_text keeps emission order for humans.
  lint::Report a;
  a.add("UC03", "zeta", 7, "late");
  a.add("MA01", "alpha", 2, "early");
  a.add("MA01", "alpha", 1, "earlier");
  lint::Report b;
  b.add("MA01", "alpha", 1, "earlier");
  b.add("UC03", "zeta", 7, "late");
  b.add("MA01", "alpha", 2, "early");
  EXPECT_EQ(lint::format_json(a), lint::format_json(b));
  EXPECT_NE(lint::format_text(a), lint::format_text(b));

  // And repeated full lint runs render byte-identical JSON.
  const std::string input = read_case("dead_code.ucode.hex");
  const auto r1 = lint::lint_text(input, "u");
  const auto r2 = lint::lint_text(input, "u");
  EXPECT_EQ(lint::format_json(r1), lint::format_json(r2));
  EXPECT_EQ(lint::format_cli(r1, "u", true), lint::format_cli(r2, "u", true));
}

TEST(Fix, ChipPowerFixRoundTripRecertifies) {
  const std::string text = read_case("infeasible_power.chip");
  ASSERT_TRUE(lint::lint_chip_text(text, "u").has_code("CH07"));
  const auto fixed = lint::fix_chip_text(text, "infeasible_power.chip");
  ASSERT_TRUE(fixed.changed) << fixed.summary;
  EXPECT_NE(fixed.summary.find("power_budget"), std::string::npos)
      << fixed.summary;
  const auto relint = lint::lint_chip_text(fixed.text, "u");
  EXPECT_FALSE(relint.has_code("CH07")) << lint::format_text(relint);
  // The semantic-diff guarantee: the rewritten chip's schedule certifies.
  const auto chip = soc::parse_chip(fixed.text);
  const auto cert = lint::certify_soc(
      chip.description, chip.plan,
      soc::Scheduler{}.compute_schedule(chip.description, chip.plan));
  EXPECT_TRUE(cert.empty()) << lint::format_text(cert);
}

TEST(Fix, ChipSpareFixDropsDeadSpares) {
  // Spares on a word-oriented memory can never engage (repair is
  // bit-oriented): CH09, mechanically fixable by dropping them.
  const std::string text =
      "soc s\n"
      "power_budget 10\n"
      "mem a addr_bits=4 word_bits=8 seed=1 spare_rows=1\n"
      "assign a \"March C\" ucode\n";
  ASSERT_TRUE(lint::lint_chip_text(text, "u").has_code("CH09"));
  const auto fixed = lint::fix_chip_text(text, "u");
  ASSERT_TRUE(fixed.changed) << fixed.summary;
  EXPECT_NE(fixed.summary.find("spare"), std::string::npos) << fixed.summary;
  const auto relint = lint::lint_chip_text(fixed.text, "u");
  EXPECT_FALSE(relint.has_code("CH09")) << lint::format_text(relint);
  const auto chip = soc::parse_chip(fixed.text);
  const auto cert = lint::certify_soc(
      chip.description, chip.plan,
      soc::Scheduler{}.compute_schedule(chip.description, chip.plan));
  EXPECT_TRUE(cert.empty()) << lint::format_text(cert);
}

TEST(Fix, MarchFixKeepsProverVerdictUnchangedOrBetter) {
  // A custom algorithm with a dead trailing element: the fix may only
  // remove it because the prover's guaranteed classes survive.
  march::MarchAlgorithm alg = march::parse(
      "any(w0); up(r0,w1); up(r1,w0); down(r0,w1); down(r1,w0); any(r0); "
      "any(r0)",
      "padded");
  const auto before = lint::prove_coverage(alg);
  const auto outcome = lint::fix_march(alg);
  EXPECT_TRUE(alg.validate().empty());
  const auto after = lint::prove_coverage(alg);
  for (const auto cls : lint::provable_classes()) {
    const auto* b = before.find(cls);
    const auto* a = after.find(cls);
    ASSERT_NE(b, nullptr);
    ASSERT_NE(a, nullptr);
    if (b->guaranteed) {
      EXPECT_TRUE(a->guaranteed)
          << memsim::fault_class_name(cls) << " lost after fix: "
          << outcome.summary;
    }
  }
}

}  // namespace
