// The static verifier (`pmbist lint`).
//
// The acceptance-critical suite is ProverVsQualifier: for every library
// algorithm and every provable fault class, the lint prover's *guaranteed*
// verdict must coincide exactly with the exhaustive simulation-based
// qualifier (march::analyze) — the prover reasons structurally, the
// qualifier by brute force, and they may never disagree.  On top of that,
// guaranteed classes must show 100% detection in the sampled
// fault-simulation campaign.
//
// The rest pins the diagnostics engine, each lint pass on crafted inputs
// (including the on-disk corpus under tests/lint_cases/ that the CLI
// WILL_FAIL tests also run), input-kind sniffing, determinism, and the
// error-location contract of the assembler / compiler / image loaders.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/chip_lint.h"
#include "lint/diagnostics.h"
#include "lint/driver.h"
#include "lint/march_lint.h"
#include "lint/program_lint.h"
#include "lint/prover.h"
#include "march/analysis.h"
#include "march/coverage.h"
#include "march/library.h"
#include "march/parser.h"
#include "mbist_pfsm/compiler.h"
#include "mbist_ucode/assembler.h"

namespace {

using namespace pmbist;

std::string read_case(const std::string& name) {
  const std::string path =
      std::string{PMBIST_SOURCE_DIR} + "/tests/lint_cases/" + name;
  std::ifstream in{path};
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

lint::Report lint_case(const std::string& name) {
  return lint::lint_text(read_case(name), name);
}

// ---------------------------------------------------------------------------
// Prover vs the exhaustive qualifier and the fault-simulation campaign.

TEST(Prover, AgreesWithQualifierOnEveryLibraryAlgorithm) {
  for (const auto& alg : march::all_algorithms()) {
    const auto proof = lint::prove_coverage(alg);
    for (const auto cls : lint::provable_classes()) {
      const auto* p = proof.find(cls);
      ASSERT_NE(p, nullptr) << alg.name();
      const bool qualified =
          march::analyze(alg, cls) == march::Detection::Guaranteed;
      EXPECT_EQ(p->guaranteed, qualified)
          << alg.name() << " / " << memsim::fault_class_name(cls)
          << ": prover says " << (p->guaranteed ? "guaranteed" : "partial")
          << " (" << p->detail << ") but the exhaustive qualifier says "
          << (qualified ? "guaranteed" : "not guaranteed");
    }
  }
}

TEST(Prover, GuaranteedClassesReachFullSimulatedCoverage) {
  const memsim::MemoryGeometry geometry{.address_bits = 4,
                                        .word_bits = 1,
                                        .num_ports = 1};
  for (const auto& alg : march::all_algorithms()) {
    const auto proof = lint::prove_coverage(alg);
    for (const auto& [cls, p] : proof.classes) {
      if (!p.guaranteed) continue;
      const auto cell = march::evaluate_coverage(alg, cls, geometry,
                                                 {.seed = 7,
                                                  .max_instances_per_class = 32,
                                                  .jobs = 1});
      ASSERT_GT(cell.total, 0) << alg.name();
      EXPECT_EQ(cell.detected, cell.total)
          << alg.name() << " / " << memsim::fault_class_name(cls)
          << ": proven guaranteed but the campaign missed instances";
    }
  }
}

TEST(Prover, EveryProofCarriesAWitness) {
  const auto proof = lint::prove_coverage(march::mats());
  ASSERT_EQ(proof.classes.size(), lint::provable_classes().size());
  for (const auto& [cls, p] : proof.classes)
    EXPECT_FALSE(p.detail.empty()) << memsim::fault_class_name(cls);
}

// ---------------------------------------------------------------------------
// Diagnostics engine.

TEST(Diagnostics, RegistryIsWellFormed) {
  EXPECT_GE(lint::all_codes().size(), 30u);
  for (const auto& info : lint::all_codes()) {
    EXPECT_EQ(info.code.size(), 4u) << info.code;
    EXPECT_FALSE(info.summary.empty()) << info.code;
    EXPECT_EQ(lint::find_code(info.code), &info);
    EXPECT_EQ(lint::severity_of(info.code), info.severity);
  }
  EXPECT_EQ(lint::find_code("ZZ99"), nullptr);
  EXPECT_EQ(lint::severity_of("ZZ99"), lint::Severity::Error);
}

TEST(Diagnostics, ReportCountsAndRenderers) {
  lint::Report report;
  report.add("MA03", "unit_a", 2, "impossible read", "fix the data");
  report.add("MA04", "unit_a", -1, "odd pause");
  EXPECT_TRUE(report.has_errors());
  EXPECT_TRUE(report.has_code("MA03"));
  EXPECT_FALSE(report.has_code("MA05"));
  EXPECT_EQ(report.count(lint::Severity::Error), 1);
  EXPECT_EQ(report.count(lint::Severity::Warning), 1);

  const auto text = lint::format_text(report);
  EXPECT_NE(text.find("error[MA03] unit_a:2: impossible read"),
            std::string::npos);
  EXPECT_NE(text.find("hint: fix the data"), std::string::npos);
  // index -1 renders without a :index segment.
  EXPECT_NE(text.find("warning[MA04] unit_a: odd pause"), std::string::npos);

  const auto json = lint::format_json(report);
  EXPECT_NE(json.find("\"code\":\"MA03\""), std::string::npos);
  EXPECT_NE(json.find("\"index\":2"), std::string::npos);
  EXPECT_NE(json.find("\"errors\":1"), std::string::npos);
  EXPECT_NE(json.find("\"warnings\":1"), std::string::npos);
}

TEST(Diagnostics, JsonEscapesSpecials) {
  lint::Report report;
  report.add("MA00", "a\"b\\c", -1, "line1\nline2");
  const auto json = lint::format_json(report);
  EXPECT_NE(json.find("a\\\"b\\\\c"), std::string::npos);
  EXPECT_NE(json.find("line1\\nline2"), std::string::npos);
}

// ---------------------------------------------------------------------------
// March pass.

TEST(MarchLint, CleanLibraryAlgorithmsHaveNoFindings) {
  for (const auto& alg : march::all_algorithms()) {
    const auto report = lint::lint_march(alg);
    EXPECT_FALSE(report.has_errors()) << alg.name() << "\n"
                                      << lint::format_text(report);
    // Every library algorithm guarantees SAF, so MA06 never fires.
    EXPECT_FALSE(report.has_code("MA06")) << alg.name();
    EXPECT_TRUE(report.has_code("MA05")) << alg.name();
  }
}

TEST(MarchLint, CraftedDefectsEmitTheirCodes) {
  const auto lint_dsl = [](const char* dsl) {
    return lint::lint_march(march::parse(dsl, "t"));
  };
  EXPECT_TRUE(lint_dsl("up(r0); up(w0)").has_code("MA01"));
  EXPECT_TRUE(lint_dsl("up(w0); down(w1)").has_code("MA02"));
  EXPECT_TRUE(lint_dsl("up(w0); up(r1)").has_code("MA03"));
  EXPECT_TRUE(lint_dsl("any(w0); pause(100ns); any(r0); pause(200ns); any(r0)")
                  .has_code("MA04"));
  EXPECT_TRUE(lint_dsl("up(w0); up(r0)").has_code("MA06"));
}

// ---------------------------------------------------------------------------
// Program passes (ucode + pFSM), including the on-disk corpus the CLI
// WILL_FAIL tests exercise end to end.

struct CorpusCase {
  const char* file;
  const char* code;
};

TEST(ProgramLint, CorpusCasesEmitTheirStableCodes) {
  const CorpusCase cases[] = {
      {"dead_code.ucode.hex", "UC03"},
      {"runs_off_end.ucode.hex", "UC04"},
      {"empty_repeat.ucode.hex", "UC05"},
      {"nested_repeat.ucode.hex", "UC05"},
      {"no_reads.ucode.hex", "UC06"},
      {"oversized.ucode.hex", "UC02"},
      {"deadlock.pfsm.hex", "PF04"},
      {"no_port_loop.pfsm.hex", "PF05"},
      {"dup_mem.chip", "CH01"},
      {"unknown_mem.chip", "CH03"},
      {"infeasible_power.chip", "CH07"},
      {"inconsistent.march", "MA03"},
  };
  for (const auto& c : cases) {
    SCOPED_TRACE(c.file);
    const auto report = lint_case(c.file);
    EXPECT_TRUE(report.has_code(c.code)) << lint::format_text(report);
    EXPECT_TRUE(report.has_errors());
  }
}

TEST(ProgramLint, AssembledLibraryProgramsAreClean) {
  for (const auto& alg : march::all_algorithms()) {
    const auto r = mbist_ucode::assemble(alg);
    const auto report = lint::lint_ucode(r.program, {.storage_depth = 32});
    EXPECT_FALSE(report.has_errors()) << alg.name() << "\n"
                                      << lint::format_text(report);
    EXPECT_EQ(report.count(lint::Severity::Warning), 0)
        << alg.name() << "\n" << lint::format_text(report);
  }
}

TEST(ProgramLint, CompiledPfsmProgramsAreClean) {
  for (const auto& alg : march::all_algorithms()) {
    if (!mbist_pfsm::is_mappable(alg)) continue;
    const auto r = mbist_pfsm::compile(alg);
    const auto report = lint::lint_pfsm(r.program, {.buffer_depth = 16});
    EXPECT_FALSE(report.has_errors()) << alg.name() << "\n"
                                      << lint::format_text(report);
    EXPECT_EQ(report.count(lint::Severity::Warning), 0)
        << alg.name() << "\n" << lint::format_text(report);
  }
}

TEST(ProgramLint, RoundTripThroughHexTextIsClean) {
  const auto r = mbist_ucode::assemble(march::march_c());
  const auto again =
      mbist_ucode::MicrocodeProgram::from_hex_text(r.program.to_hex_text());
  EXPECT_EQ(again.image(), r.program.image());
  EXPECT_EQ(again.name(), r.program.name());
  EXPECT_TRUE(lint::lint_ucode(again).empty());

  const auto p = mbist_pfsm::compile(march::mats_plus());
  const auto pagain =
      mbist_pfsm::PfsmProgram::from_hex_text(p.program.to_hex_text());
  EXPECT_EQ(pagain.image(), p.program.image());
  EXPECT_EQ(pagain.name(), p.program.name());
  EXPECT_TRUE(lint::lint_pfsm(pagain).empty());
}

TEST(ProgramLint, Pf03ModeRangeIsApiOnlyAndDetected) {
  // The hex encoding holds the mode in 3 bits, so PF03 cannot appear from
  // any on-disk image — it guards programs built directly in C++.
  const auto* info = lint::find_code("PF03");
  ASSERT_NE(info, nullptr);
  EXPECT_TRUE(info->api_only);

  mbist_pfsm::PfsmInstruction component;
  component.mode = 9;  // outside SM0..SM7
  mbist_pfsm::PfsmInstruction data_loop;
  data_loop.ctrl = true;
  mbist_pfsm::PfsmInstruction port_loop;
  port_loop.ctrl = true;
  port_loop.ctrl_op = true;
  const mbist_pfsm::PfsmProgram program{"bad_mode",
                                        {component, data_loop, port_loop}};
  const auto report = lint::lint_pfsm(program);
  EXPECT_TRUE(report.has_code("PF03")) << lint::format_text(report);
  EXPECT_TRUE(report.has_errors());
}

// ---------------------------------------------------------------------------
// Chip pass on the shipped example.

TEST(ChipLint, DemoChipHasNoErrors) {
  std::ifstream in{std::string{PMBIST_SOURCE_DIR} +
                   "/examples/soc_demo.chip"};
  ASSERT_TRUE(in.good());
  std::ostringstream text;
  text << in.rdbuf();
  const auto report = lint::lint_chip_text(text.str(), "soc_demo.chip");
  EXPECT_FALSE(report.has_errors()) << lint::format_text(report);
  // The demo deliberately pairs a TF defect with MATS+ (TF not guaranteed)
  // to exercise repair; the linter calls that out as an escape warning.
  EXPECT_TRUE(report.has_code("CH11")) << lint::format_text(report);
}

// ---------------------------------------------------------------------------
// Driver: sniffing, never-throws, determinism.

TEST(Driver, DetectsEveryInputKind) {
  EXPECT_EQ(lint::detect_kind("March C"), lint::InputKind::March);
  EXPECT_EQ(lint::detect_kind("up(w0); up(r0)"), lint::InputKind::March);
  EXPECT_EQ(lint::detect_kind("# comment\nsoc x\nmem a addr_bits=4 seed=1\n"),
            lint::InputKind::Chip);
  EXPECT_EQ(lint::detect_kind("; pmbist microcode image v1\n141\n"),
            lint::InputKind::UcodeImage);
  EXPECT_EQ(lint::detect_kind("; pmbist pfsm image v1\n000\n"),
            lint::InputKind::PfsmImage);
  EXPECT_EQ(lint::detect_kind(""), lint::InputKind::March);
}

TEST(Driver, MalformedInputsBecomeParseDiagnosticsNotThrows) {
  EXPECT_TRUE(lint::lint_text("n@t a march", "u").has_code("MA00"));
  EXPECT_TRUE(lint::lint_text("; pmbist microcode image v1\nxyz\n", "u")
                  .has_code("UC00"));
  EXPECT_TRUE(lint::lint_text("; pmbist pfsm image v1\nzzz\n", "u")
                  .has_code("PF00"));
  EXPECT_TRUE(lint::lint_text("soc x\nfrobnicate\n", "u").has_code("CH02"));
}

TEST(Driver, MarchFilesMayCarryHashComments) {
  const auto report = lint::lint_text(
      "# March C in a file\nany(w0); up(r0,w1); up(r1,w0);\n"
      "down(r0,w1); down(r1,w0); any(r0)  # trailing comment\n",
      "commented.march");
  EXPECT_FALSE(report.has_errors()) << lint::format_text(report);
  EXPECT_TRUE(report.has_code("MA05"));
}

TEST(Driver, ReportsAreDeterministic) {
  const char* inputs[] = {
      "March C",
      "up(w0); up(r1)",
      "; pmbist microcode image v1\n141\n121\n",
      "soc x\nmem a addr_bits=4 seed=1\nassign b \"March C\" ucode\n",
  };
  for (const char* text : inputs) {
    const auto a = lint::lint_text(text, "unit");
    const auto b = lint::lint_text(text, "unit");
    EXPECT_EQ(a, b) << text;
  }
}

TEST(Driver, HonorsDepthOptions) {
  const std::string image = read_case("oversized.ucode.hex");
  EXPECT_TRUE(lint::lint_text(image, "u", {.storage_depth = 32})
                  .has_code("UC02"));
  EXPECT_FALSE(lint::lint_text(image, "u", {.storage_depth = 64})
                   .has_code("UC02"));

  const auto p = mbist_pfsm::compile(march::mats_plus());
  const auto hex = p.program.to_hex_text();
  EXPECT_TRUE(lint::lint_text(hex, "u", {.buffer_depth = 4})
                  .has_code("PF02"));
  EXPECT_FALSE(lint::lint_text(hex, "u", {.buffer_depth = 16})
                   .has_code("PF02"));
}

// ---------------------------------------------------------------------------
// Error-location contract: assembler, compiler and image loaders name the
// offending instruction / element / line.

TEST(ErrorLocations, AssemblerNamesThePauseElement) {
  const auto alg =
      march::parse("any(w0); pause(100ns); any(r0); pause(200ns); any(r0)",
                   "mixed_pauses");
  try {
    (void)mbist_ucode::assemble(alg);
    FAIL() << "expected AssembleError";
  } catch (const mbist_ucode::AssembleError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("element 3"), std::string::npos) << what;
    EXPECT_NE(what.find("200ns"), std::string::npos) << what;
    EXPECT_NE(what.find("100ns"), std::string::npos) << what;
  }
}

TEST(ErrorLocations, PfsmCompilerNamesTheElement) {
  const auto alg =
      march::parse("pause(5ns); any(w0); any(r0)", "leading_pause");
  try {
    (void)mbist_pfsm::compile(alg);
    FAIL() << "expected CompileError";
  } catch (const mbist_pfsm::CompileError& e) {
    EXPECT_NE(std::string{e.what()}.find("element 0"), std::string::npos)
        << e.what();
  }
}

TEST(ErrorLocations, ImageLoadersNameInstructionAndLine) {
  try {
    (void)mbist_ucode::MicrocodeProgram::from_hex_text(
        "; pmbist microcode image v1\n141\nxyz\n");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string{e.what()}.find("line 3"), std::string::npos)
        << e.what();
  }
  try {
    // 0x3e0: rw field 11 is reserved -> decode error on instruction 1.
    (void)mbist_ucode::MicrocodeProgram::from_image("bad", {0x141, 0x3e0});
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string{e.what()}.find("instruction 1"), std::string::npos)
        << e.what();
  }
  try {
    // 0x3ff exceeds the 9-bit pFSM encoding -> decode error, line named.
    (void)mbist_pfsm::PfsmProgram::from_hex_text(
        "; pmbist pfsm image v1\n000\n3ff\n");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("instruction 1"), std::string::npos) << what;
    EXPECT_NE(what.find("line 3"), std::string::npos) << what;
  }
}

}  // namespace
