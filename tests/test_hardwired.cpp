// Hardwired (non-programmable) controller tests: generated FSM structure,
// op-stream equivalence against the reference expansion for every library
// algorithm, and the paper's observation 3 — hardwired area grows as the
// algorithm/fault model is enhanced.

#include <gtest/gtest.h>

#include "bist/session.h"
#include "march/library.h"
#include "mbist_hardwired/area.h"
#include "mbist_hardwired/controller.h"

namespace {

using namespace pmbist;
using mbist_hardwired::HardwiredController;
using memsim::MemoryGeometry;

// States = Idle + Done + per element (setup + ops | pause) + loop states.
TEST(HardwiredGenerator, StateCountFormula) {
  const auto alg = march::march_c();
  const auto fsm =
      mbist_hardwired::generate_fsm(alg, {.data_backgrounds = false,
                                          .multiport = false});
  int expected = 2;  // Idle + Done
  for (const auto& e : alg.elements())
    expected += e.is_pause ? 1 : 1 + static_cast<int>(e.ops.size());
  EXPECT_EQ(fsm.num_states(), expected);  // March C: 2 + 6 + 10 = 18

  const auto fsm_full =
      mbist_hardwired::generate_fsm(alg, {.data_backgrounds = true,
                                          .multiport = true});
  EXPECT_EQ(fsm_full.num_states(), expected + 2);  // + BgAdvance + PortAdvance
}

TEST(HardwiredGenerator, AllLibraryAlgorithmsValidate) {
  for (const auto& alg : march::all_algorithms()) {
    for (bool word : {false, true}) {
      for (bool mp : {false, true}) {
        const auto fsm = mbist_hardwired::generate_fsm(
            alg, {.data_backgrounds = word, .multiport = mp});
        EXPECT_TRUE(fsm.validate().empty())
            << alg.name() << " word=" << word << " mp=" << mp;
      }
    }
  }
}

struct EquivCase {
  const char* alg;
  MemoryGeometry geometry;
};

class HardwiredEquivalence : public ::testing::TestWithParam<EquivCase> {};

TEST_P(HardwiredEquivalence, StreamMatchesReferenceExpansion) {
  const auto& p = GetParam();
  const auto alg = march::by_name(p.alg);
  HardwiredController ctrl{alg, {.geometry = p.geometry}};
  const auto actual = bist::collect_ops(ctrl, 100'000'000);
  const auto expected = march::expand(alg, p.geometry);
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i)
    ASSERT_EQ(actual[i], expected[i]) << "op " << i << " of " << p.alg;
}

constexpr MemoryGeometry kBit1P{.address_bits = 5, .word_bits = 1,
                                .num_ports = 1};
constexpr MemoryGeometry kWord1P{.address_bits = 4, .word_bits = 8,
                                 .num_ports = 1};
constexpr MemoryGeometry kWord2P{.address_bits = 3, .word_bits = 4,
                                 .num_ports = 2};

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, HardwiredEquivalence,
    ::testing::Values(EquivCase{"MATS", kBit1P}, EquivCase{"MATS+", kBit1P},
                      EquivCase{"March X", kBit1P},
                      EquivCase{"March Y", kBit1P},
                      EquivCase{"March C", kBit1P},
                      EquivCase{"March C (orig)", kBit1P},
                      EquivCase{"March C+", kBit1P},
                      EquivCase{"March C++", kBit1P},
                      EquivCase{"March A", kBit1P},
                      EquivCase{"March A+", kBit1P},
                      EquivCase{"March A++", kBit1P},
                      EquivCase{"March B", kBit1P},
                      EquivCase{"March U", kBit1P},
                      EquivCase{"March LR", kBit1P},
                      EquivCase{"March SS", kBit1P},
                      EquivCase{"March G", kBit1P},
                      EquivCase{"March SS", kWord2P},
                      EquivCase{"March G", kWord1P},
                      EquivCase{"March C", kWord1P},
                      EquivCase{"March C++", kWord1P},
                      EquivCase{"March A+", kWord2P},
                      EquivCase{"March C++", kWord2P},
                      EquivCase{"March B", kWord2P}),
    [](const auto& info) {
      std::string name = info.param.alg;
      for (char& c : name)
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      return name + "_a" + std::to_string(info.param.geometry.address_bits) +
             "_w" + std::to_string(info.param.geometry.word_bits) + "_p" +
             std::to_string(info.param.geometry.num_ports);
    });

TEST(HardwiredController, PassesOnFaultFreeMemory) {
  const MemoryGeometry g{.address_bits = 6, .word_bits = 4, .num_ports = 2};
  HardwiredController ctrl{march::march_c_plus_plus(), {.geometry = g}};
  memsim::SramModel mem{g, 11};
  const auto result = bist::run_session(ctrl, mem);
  EXPECT_TRUE(result.passed());
}

TEST(HardwiredController, DetectsInjectedFault) {
  const MemoryGeometry g{.address_bits = 5};
  HardwiredController ctrl{march::march_c(), {.geometry = g}};
  memsim::FaultyMemory mem{g, 1};
  mem.add_fault(memsim::StuckAtFault{{17, 0}, true});
  const auto result = bist::run_session(ctrl, mem);
  EXPECT_TRUE(result.completed());
  ASSERT_FALSE(result.failures.empty());
  EXPECT_EQ(result.failures.front().op.addr, 17u);
}

// Observation 3: enhancing the algorithm grows the hardwired controller.
TEST(HardwiredArea, AreaGrowsWithAlgorithmEnhancement) {
  const auto lib = netlist::TechLibrary::cmos5s();
  const mbist_hardwired::AreaConfig cfg{.geometry = {.address_bits = 10}};
  auto ge = [&](const march::MarchAlgorithm& a) {
    return mbist_hardwired::hardwired_area(a, cfg).total_ge(lib);
  };
  EXPECT_LT(ge(march::march_c()), ge(march::march_c_plus()));
  EXPECT_LT(ge(march::march_c_plus()), ge(march::march_c_plus_plus()));
  EXPECT_LT(ge(march::march_a()), ge(march::march_a_plus()));
  EXPECT_LT(ge(march::march_a_plus()), ge(march::march_a_plus_plus()));
  // March A is a longer algorithm than March C.
  EXPECT_LT(ge(march::march_c()), ge(march::march_a()));
}

// Word-oriented / multiport support grows the controller (Table 2 vs 1).
TEST(HardwiredArea, AreaGrowsWithFeatureSupport) {
  const auto lib = netlist::TechLibrary::cmos5s();
  auto ge = [&](MemoryGeometry g) {
    return mbist_hardwired::hardwired_area(march::march_c(), {.geometry = g})
        .total_ge(lib);
  };
  const double bit1p = ge({.address_bits = 10, .word_bits = 1, .num_ports = 1});
  const double word = ge({.address_bits = 10, .word_bits = 8, .num_ports = 1});
  const double multi = ge({.address_bits = 10, .word_bits = 8, .num_ports = 2});
  EXPECT_LT(bit1p, word);
  EXPECT_LT(word, multi);
}

// The area ordering is process-independent (same inventory, different
// library): a sanity check that reports scale, not reorder.
TEST(HardwiredArea, OrderingIsProcessIndependent) {
  const auto lib1 = netlist::TechLibrary::cmos5s();
  const auto lib2 = netlist::TechLibrary::generic_0_6um();
  const mbist_hardwired::AreaConfig cfg{.geometry = {.address_bits = 10}};
  const auto rc = mbist_hardwired::hardwired_area(march::march_c(), cfg);
  const auto ra = mbist_hardwired::hardwired_area(march::march_a(), cfg);
  EXPECT_LT(rc.total_ge(lib1), ra.total_ge(lib1));
  EXPECT_LT(rc.total_area_um2(lib2), ra.total_area_um2(lib2));
  EXPECT_GT(rc.total_area_um2(lib2), rc.total_area_um2(lib1));
}

}  // namespace
