// Microcode-based controller tests: ISA round-trips, assembler structure
// (the paper's Fig. 2 program shape), and — the load-bearing property —
// cycle-accurate op-stream equivalence against the reference expansion for
// every library algorithm and several memory geometries.

#include <gtest/gtest.h>

#include "bist/session.h"
#include "march/library.h"
#include "mbist_ucode/area.h"
#include "mbist_ucode/controller.h"

namespace {

using namespace pmbist;
using mbist_ucode::AssembleOptions;
using mbist_ucode::Flow;
using mbist_ucode::Instruction;
using mbist_ucode::MicrocodeController;
using mbist_ucode::Rw;
using memsim::MemoryGeometry;

TEST(UcodeIsa, EncodeDecodeRoundTrip) {
  for (int flow = 0; flow < 8; ++flow) {
    for (int rw = 0; rw < 3; ++rw) {
      for (int fields = 0; fields < 32; ++fields) {
        Instruction i;
        i.addr_inc = fields & 1;
        i.addr_down = fields & 2;
        i.data_inc = fields & 4;
        i.data_inv = fields & 8;
        i.cmp_inv = fields & 16;
        i.rw = static_cast<Rw>(rw);
        i.flow = static_cast<Flow>(flow);
        EXPECT_EQ(Instruction::decode(i.encode()), i);
      }
    }
  }
}

TEST(UcodeIsa, DecodeRejectsReservedRwField) {
  EXPECT_THROW((void)Instruction::decode(0x3u << 5), std::invalid_argument);
  EXPECT_THROW((void)Instruction::decode(1u << 10), std::invalid_argument);
}

TEST(UcodeIsa, HexTextRoundTrip) {
  const auto r = mbist_ucode::assemble(march::march_a_plus());
  const std::string text = r.program.to_hex_text();
  EXPECT_NE(text.find("pmbist microcode image v1"), std::string::npos);
  EXPECT_NE(text.find("name: March A+"), std::string::npos);
  const auto back = mbist_ucode::MicrocodeProgram::from_hex_text(text);
  EXPECT_EQ(back.name(), "March A+");
  EXPECT_EQ(back.instructions(), r.program.instructions());
}

TEST(UcodeIsa, HexTextRejectsMalformedInput) {
  using mbist_ucode::MicrocodeProgram;
  EXPECT_THROW((void)MicrocodeProgram::from_hex_text("141\n"),
               std::invalid_argument);  // no header
  EXPECT_THROW((void)MicrocodeProgram::from_hex_text(
                   "; pmbist microcode image v1\nxyz\n"),
               std::invalid_argument);  // bad word
  EXPECT_THROW((void)MicrocodeProgram::from_hex_text(
                   "; pmbist microcode image v1\n"),
               std::invalid_argument);  // empty
  EXPECT_THROW((void)MicrocodeProgram::from_hex_text(
                   "; pmbist microcode image v1\nfff\n"),
               std::invalid_argument);  // reserved rw encoding
}

TEST(UcodeIsa, ProgramImageRoundTrip) {
  const auto r = mbist_ucode::assemble(march::march_c());
  const auto image = r.program.image();
  const auto back =
      mbist_ucode::MicrocodeProgram::from_image("March C", image);
  EXPECT_EQ(back.instructions(), r.program.instructions());
}

// The paper's Fig. 2: March C assembles to exactly 9 instructions with the
// Repeat-based symmetric encoding.
TEST(UcodeAssembler, MarchCMatchesFig2Shape) {
  const auto r = mbist_ucode::assemble(march::march_c());
  ASSERT_TRUE(r.used_repeat);
  const auto& code = r.program.instructions();
  ASSERT_EQ(code.size(), 9u);

  EXPECT_EQ(code[0].flow, Flow::LoopSelf);  // any(w0)
  EXPECT_EQ(code[0].rw, Rw::Write);
  EXPECT_FALSE(code[0].data_inv);

  EXPECT_EQ(code[1].flow, Flow::Next);  // r0 (address held)
  EXPECT_EQ(code[1].rw, Rw::Read);
  EXPECT_FALSE(code[1].cmp_inv);
  EXPECT_FALSE(code[1].addr_inc);

  EXPECT_EQ(code[2].flow, Flow::LoopCell);  // w1 (address incremented)
  EXPECT_EQ(code[2].rw, Rw::Write);
  EXPECT_TRUE(code[2].data_inv);
  EXPECT_TRUE(code[2].addr_inc);

  EXPECT_EQ(code[3].rw, Rw::Read);   // r1
  EXPECT_TRUE(code[3].cmp_inv);
  EXPECT_EQ(code[4].rw, Rw::Write);  // w0

  EXPECT_EQ(code[5].flow, Flow::Repeat);  // complement order only
  EXPECT_TRUE(code[5].addr_down);
  EXPECT_FALSE(code[5].data_inv);
  EXPECT_FALSE(code[5].cmp_inv);

  EXPECT_EQ(code[6].flow, Flow::LoopSelf);  // any(r0)
  EXPECT_EQ(code[6].rw, Rw::Read);

  EXPECT_EQ(code[7].flow, Flow::LoopData);
  EXPECT_EQ(code[8].flow, Flow::LoopPort);
}

// March A's symmetric halves need all three complements (order, data,
// compare); March C needs only the address order.
TEST(UcodeAssembler, MarchARepeatMask) {
  const auto r = mbist_ucode::assemble(march::march_a());
  ASSERT_TRUE(r.used_repeat);
  const auto& code = r.program.instructions();
  const auto repeat =
      std::find_if(code.begin(), code.end(),
                   [](const Instruction& i) { return i.flow == Flow::Repeat; });
  ASSERT_NE(repeat, code.end());
  EXPECT_TRUE(repeat->addr_down);
  EXPECT_TRUE(repeat->data_inv);
  EXPECT_TRUE(repeat->cmp_inv);
}

TEST(UcodeAssembler, SymmetricEncodingShrinksPrograms) {
  for (const auto& alg : {march::march_c(), march::march_a(),
                          march::march_c_plus_plus()}) {
    const auto folded = mbist_ucode::assemble(alg);
    const auto flat =
        mbist_ucode::assemble(alg, AssembleOptions{.symmetric_encoding = false});
    EXPECT_TRUE(folded.used_repeat) << alg.name();
    EXPECT_FALSE(flat.used_repeat) << alg.name();
    EXPECT_LT(folded.program.size(), flat.program.size()) << alg.name();
  }
}

TEST(UcodeAssembler, AsymmetricAlgorithmHasNoRepeat) {
  const auto r = mbist_ucode::assemble(march::mats());
  EXPECT_FALSE(r.used_repeat);
}

TEST(UcodeAssembler, FoldMasksPerAlgorithm) {
  // March U folds under the full complement (order+data+compare).
  const auto u = mbist_ucode::assemble(march::march_u());
  ASSERT_TRUE(u.used_repeat);
  EXPECT_EQ(u.program.size(), 10);
  // March SS folds under the order complement alone.
  const auto ss = mbist_ucode::assemble(march::march_ss());
  ASSERT_TRUE(ss.used_repeat);
  EXPECT_EQ(ss.program.size(), 15);
  const auto ss_repeat = std::find_if(
      ss.program.instructions().begin(), ss.program.instructions().end(),
      [](const Instruction& i) { return i.flow == Flow::Repeat; });
  ASSERT_NE(ss_repeat, ss.program.instructions().end());
  EXPECT_TRUE(ss_repeat->addr_down);
  EXPECT_FALSE(ss_repeat->data_inv);
  // March G has no foldable window (element 2 differs from 4) but has
  // pauses: 27 instructions, still within Z=32.
  const auto g = mbist_ucode::assemble(march::march_g());
  EXPECT_FALSE(g.used_repeat);
  EXPECT_EQ(g.program.size(), 27);
}

TEST(UcodeAssembler, RejectsOversizedProgram) {
  MicrocodeController ctrl{{.geometry = {.address_bits = 4}, .storage_depth = 4}};
  EXPECT_THROW(ctrl.load_algorithm(march::march_a_plus_plus()),
               mbist_ucode::AssembleError);
}

// --- op-stream equivalence: controller vs reference expansion -------------

struct EquivCase {
  const char* alg;
  MemoryGeometry geometry;
  bool symmetric;
};

class UcodeEquivalence : public ::testing::TestWithParam<EquivCase> {};

TEST_P(UcodeEquivalence, StreamMatchesReferenceExpansion) {
  const auto& p = GetParam();
  const auto alg = march::by_name(p.alg);
  MicrocodeController ctrl{{.geometry = p.geometry}};
  ctrl.load_algorithm(alg, AssembleOptions{.symmetric_encoding = p.symmetric});

  const auto actual = bist::collect_ops(ctrl, 100'000'000);
  const auto expected = march::expand(alg, p.geometry);
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i)
    ASSERT_EQ(actual[i], expected[i]) << "op " << i << " of " << p.alg;
}

constexpr MemoryGeometry kBit1P{.address_bits = 5, .word_bits = 1,
                                .num_ports = 1};
constexpr MemoryGeometry kWord1P{.address_bits = 4, .word_bits = 8,
                                 .num_ports = 1};
constexpr MemoryGeometry kWord2P{.address_bits = 3, .word_bits = 4,
                                 .num_ports = 2};

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, UcodeEquivalence,
    ::testing::Values(
        EquivCase{"MATS", kBit1P, true}, EquivCase{"MATS+", kBit1P, true},
        EquivCase{"March X", kBit1P, true},
        EquivCase{"March Y", kBit1P, true},
        EquivCase{"March C", kBit1P, true},
        EquivCase{"March C", kBit1P, false},
        EquivCase{"March C (orig)", kBit1P, true},
        EquivCase{"March C+", kBit1P, true},
        EquivCase{"March C++", kBit1P, true},
        EquivCase{"March A", kBit1P, true},
        EquivCase{"March A", kBit1P, false},
        EquivCase{"March B", kBit1P, true},
        EquivCase{"March A+", kBit1P, true},
        EquivCase{"March A++", kBit1P, true},
        EquivCase{"MATS++", kBit1P, true},
        EquivCase{"March U", kBit1P, true},
        EquivCase{"March LR", kBit1P, true},
        EquivCase{"March SS", kBit1P, true},
        EquivCase{"March G", kBit1P, true},
        EquivCase{"March C", kWord1P, true},
        EquivCase{"March C+", kWord1P, true},
        EquivCase{"March A", kWord1P, true},
        EquivCase{"March SS", kWord1P, true},
        EquivCase{"March C", kWord2P, true},
        EquivCase{"March C++", kWord2P, true},
        EquivCase{"March A++", kWord2P, true},
        EquivCase{"March G", kWord2P, true},
        EquivCase{"MATS+", kWord2P, true}),
    [](const auto& info) {
      std::string name = info.param.alg;
      for (char& c : name)
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      name += "_a" + std::to_string(info.param.geometry.address_bits);
      name += "_w" + std::to_string(info.param.geometry.word_bits);
      name += "_p" + std::to_string(info.param.geometry.num_ports);
      name += info.param.symmetric ? "_sym" : "_flat";
      return name;
    });

// The folded (Repeat) and flat encodings of a symmetric algorithm must
// produce identical streams.
TEST(UcodeEquivalence, FoldedAndFlatEncodingsAgree) {
  const MemoryGeometry g{.address_bits = 4, .word_bits = 2, .num_ports = 2};
  for (const auto& alg : {march::march_c(), march::march_a(),
                          march::march_a_plus_plus()}) {
    MicrocodeController folded{{.geometry = g}};
    folded.load_algorithm(alg);
    // Flat (unfolded) encodings can exceed the default storage depth —
    // that is the point of the symmetric encoding.
    MicrocodeController flat{{.geometry = g, .storage_depth = 64}};
    flat.load_algorithm(alg, AssembleOptions{.symmetric_encoding = false});
    EXPECT_EQ(bist::collect_ops(folded, 10'000'000),
              bist::collect_ops(flat, 10'000'000))
        << alg.name();
  }
}

// A passing run on a fault-free memory, and reset() re-runnability.
TEST(UcodeController, PassesOnFaultFreeMemoryAndIsRerunnable) {
  const MemoryGeometry g{.address_bits = 6, .word_bits = 4, .num_ports = 2};
  MicrocodeController ctrl{{.geometry = g}};
  ctrl.load_algorithm(march::march_c_plus());
  memsim::SramModel mem{g, /*powerup_seed=*/7};
  const auto first = bist::run_session(ctrl, mem);
  EXPECT_TRUE(first.passed());
  EXPECT_GT(first.reads, 0u);
  // Two pause elements per pass; the program repeats per background and
  // per port.
  const auto passes =
      march::standard_backgrounds(g.word_bits).size() *
      static_cast<std::size_t>(g.num_ports);
  EXPECT_EQ(first.pauses, 2u * passes);
  const auto second = bist::run_session(ctrl, mem);
  EXPECT_TRUE(second.passed());
  EXPECT_EQ(second.cycles, first.cycles);
}

// White-box: the reference register really is loaded and cleared by the
// two Repeat encounters.
TEST(UcodeController, RepeatSetsAndClearsReferenceRegister) {
  const MemoryGeometry g{.address_bits = 3};
  MicrocodeController ctrl{{.geometry = g}};
  ctrl.load_algorithm(march::march_a());
  ctrl.reset();
  bool saw_aux_active = false;
  std::uint64_t guard = 0;
  while (!ctrl.done()) {
    ASSERT_LT(++guard, 100'000u);
    (void)ctrl.step();
    if (ctrl.repeat_bit()) {
      EXPECT_TRUE(ctrl.aux_order());
      EXPECT_TRUE(ctrl.aux_data());
      EXPECT_TRUE(ctrl.aux_cmp());
      saw_aux_active = true;
    }
  }
  EXPECT_TRUE(saw_aux_active);
  EXPECT_FALSE(ctrl.repeat_bit());
  EXPECT_FALSE(ctrl.aux_order());
}

// The paper's 2-bit initialization signal: default microcodes, custom
// microcodes, or hold.
TEST(UcodeController, InitializationSelect) {
  const MemoryGeometry g{.address_bits = 4};
  MicrocodeController ctrl{{.geometry = g}};

  ctrl.initialize(mbist_ucode::InitSelect::DefaultProgram);
  EXPECT_EQ(ctrl.program().instructions(),
            MicrocodeController::default_program().instructions());
  EXPECT_EQ(bist::collect_ops(ctrl, 1'000'000),
            march::expand(march::march_c(), g));

  const auto custom = mbist_ucode::assemble(march::mats_plus()).program;
  ctrl.initialize(mbist_ucode::InitSelect::CustomProgram, &custom);
  EXPECT_EQ(bist::collect_ops(ctrl, 1'000'000),
            march::expand(march::mats_plus(), g));

  ctrl.initialize(mbist_ucode::InitSelect::Hold);  // contents retained
  EXPECT_EQ(ctrl.program().instructions(), custom.instructions());
  EXPECT_THROW(ctrl.initialize(mbist_ucode::InitSelect::CustomProgram),
               mbist_ucode::AssembleError);
}

// Serial scan path: load the image bit-serially, read it back, run it.
TEST(UcodeController, ScanLoadRoundTrip) {
  const MemoryGeometry g{.address_bits = 4};
  MicrocodeController ctrl{{.geometry = g}};
  const auto image = mbist_ucode::assemble(march::march_y()).program.image();

  const auto shift_cycles = ctrl.load_scan(image);
  EXPECT_EQ(shift_cycles,
            image.size() * static_cast<std::size_t>(
                               mbist_ucode::kInstructionBits));
  EXPECT_EQ(ctrl.scan_dump(), image);
  EXPECT_EQ(bist::collect_ops(ctrl, 1'000'000),
            march::expand(march::march_y(), g));

  // Oversized and overwide images are rejected.
  std::vector<std::uint16_t> big(40, 0);
  EXPECT_THROW((void)ctrl.load_scan(big), mbist_ucode::AssembleError);
  EXPECT_THROW((void)ctrl.load_scan({static_cast<std::uint16_t>(1u << 10)}),
               std::invalid_argument);
}

// Area model sanity: scan-only storage shrinks the unit, and the decoder
// synthesizes to a nontrivial but bounded size.
TEST(UcodeArea, ScanOnlyStorageShrinksController) {
  const auto lib = netlist::TechLibrary::cmos5s();
  mbist_ucode::AreaConfig full{.geometry = {.address_bits = 10}};
  mbist_ucode::AreaConfig adjusted = full;
  adjusted.storage_cell = netlist::StorageCellClass::ScanOnly;
  const double full_ge = mbist_ucode::microcode_area(full).total_ge(lib);
  const double adj_ge = mbist_ucode::microcode_area(adjusted).total_ge(lib);
  EXPECT_LT(adj_ge, full_ge);
  const double reduction = (full_ge - adj_ge) / full_ge;
  EXPECT_GT(reduction, 0.35) << "storage redesign should dominate";
  EXPECT_LT(reduction, 0.75);
}

TEST(UcodeArea, DecoderSynthesisIsBounded) {
  const auto lib = netlist::TechLibrary::cmos5s();
  const double ge = mbist_ucode::decoder_inventory().total_ge(lib);
  EXPECT_GT(ge, 20.0);
  EXPECT_LT(ge, 600.0);
}

}  // namespace
