// The umbrella header must compile standalone and expose the documented
// entry points.

#include "pmbist.h"

#include <gtest/gtest.h>

TEST(Umbrella, EntryPointsResolve) {
  using namespace pmbist;
  const auto alg = march::by_name("March C");
  mbist_ucode::MicrocodeController ctrl{{.geometry = {.address_bits = 3}}};
  ctrl.load_algorithm(alg);
  memsim::SramModel mem{{.address_bits = 3}, 1};
  EXPECT_TRUE(bist::run_session(ctrl, mem).passed());
  EXPECT_EQ(march::analyze(alg, memsim::FaultClass::SAF),
            march::Detection::Guaranteed);
}
