// MISR response-compaction tests: LFSR mechanics, golden-signature
// prediction, verdict agreement with the deterministic comparator across a
// fault zoo, and measured aliasing behavior.

#include <gtest/gtest.h>

#include <set>

#include "bist/misr.h"
#include "march/library.h"
#include "mbist_ucode/controller.h"

namespace {

using namespace pmbist;
using bist::Misr;
using memsim::MemoryGeometry;

TEST(Misr, WidthValidation) {
  EXPECT_THROW((void)Misr::polynomial(0), std::invalid_argument);
  EXPECT_THROW((void)Misr::polynomial(65), std::invalid_argument);
  for (int w : {1, 2, 3, 4, 8, 9, 13, 16, 24, 32, 64}) {
    const auto poly = Misr::polynomial(w);
    EXPECT_NE(poly, 0u) << w;
    if (w < 64) {
      EXPECT_LT(poly, memsim::Word{1} << w) << w;
    }
  }
}

TEST(Misr, DeterministicAndSeedSensitive) {
  Misr a{8, 0}, b{8, 0}, c{8, 1};
  for (memsim::Word v : {0x12ull, 0x34ull, 0x56ull}) {
    a.absorb(v);
    b.absorb(v);
    c.absorb(v);
  }
  EXPECT_EQ(a.signature(), b.signature());
  EXPECT_NE(a.signature(), c.signature());
  EXPECT_EQ(a.absorbed(), 3u);
  a.reset();
  EXPECT_EQ(a.signature(), 0u);
  EXPECT_EQ(a.absorbed(), 0u);
}

TEST(Misr, OrderSensitivity) {
  // A signature register must distinguish permuted responses (a plain
  // XOR-accumulator would not).
  Misr a{8}, b{8};
  a.absorb(0x01);
  a.absorb(0x02);
  b.absorb(0x02);
  b.absorb(0x01);
  EXPECT_NE(a.signature(), b.signature());
}

TEST(Misr, SingleBitErrorAlwaysChangesSignature) {
  // A single corrupted response can never alias (linearity of the LFSR:
  // the error syndrome of one flipped bit is non-zero).
  for (int flip_at : {0, 5, 9}) {
    Misr good{8}, bad{8};
    for (int i = 0; i < 10; ++i) {
      const memsim::Word v = static_cast<memsim::Word>(i * 37 % 256);
      good.absorb(v);
      bad.absorb(i == flip_at ? v ^ 0x10 : v);
    }
    EXPECT_NE(good.signature(), bad.signature()) << flip_at;
  }
}

TEST(Misr, MaximalLengthForTabulatedWidth) {
  // With a primitive polynomial and zero input, the LFSR cycles through
  // 2^w - 1 non-zero states.
  Misr m{8, 1};
  std::set<memsim::Word> seen;
  memsim::Word s = m.signature();
  for (int i = 0; i < 255; ++i) {
    EXPECT_TRUE(seen.insert(s).second) << "state repeated at step " << i;
    m.absorb(0);
    s = m.signature();
  }
  EXPECT_EQ(s, 1u);  // back to the seed after 2^8 - 1 steps
}

TEST(Misr, GoldenSignatureMatchesFaultFreeRun) {
  const MemoryGeometry g{.address_bits = 5, .word_bits = 4, .num_ports = 1};
  const auto alg = march::march_c();
  const auto golden = bist::golden_signature(alg, g, 16);

  mbist_ucode::MicrocodeController ctrl{{.geometry = g}};
  ctrl.load_algorithm(alg);
  memsim::SramModel mem{g, 99};
  const auto r = bist::run_session_misr(ctrl, mem, 16, golden);
  EXPECT_TRUE(r.signature_pass());
  EXPECT_TRUE(r.session.passed());
  EXPECT_EQ(r.signature, golden);
}

TEST(Misr, VerdictAgreesWithComparatorAcrossFaultZoo) {
  const MemoryGeometry g{.address_bits = 4, .word_bits = 4, .num_ports = 1};
  const auto alg = march::march_c_plus_plus();
  const int width = 16;
  const auto golden = bist::golden_signature(alg, g, width);

  mbist_ucode::MicrocodeController ctrl{{.geometry = g}};
  ctrl.load_algorithm(alg);

  int detected = 0;
  int aliased = 0;
  for (auto cls : memsim::all_fault_classes()) {
    for (const auto& fault :
         march::make_fault_universe(cls, g, 11, 8)) {
      memsim::FaultyMemory mem{g, 5};
      mem.add_fault(fault);
      const auto r = bist::run_session_misr(ctrl, mem, width, golden);
      ASSERT_TRUE(r.session.completed());
      if (r.session.passed()) {
        // Undetected by the comparator: the signature must match too
        // (reads were all as expected).
        EXPECT_TRUE(r.signature_pass()) << memsim::describe(fault);
      } else {
        ++detected;
        if (r.signature_pass()) ++aliased;
      }
    }
  }
  EXPECT_GT(detected, 40);
  // Aliasing probability ~ 2^-16 per faulty run: expect none here.
  EXPECT_EQ(aliased, 0) << "of " << detected;
}

TEST(Misr, AreaScalesWithWidth) {
  const auto lib = netlist::TechLibrary::cmos5s();
  EXPECT_LT(Misr::area(4).total_ge(lib), Misr::area(16).total_ge(lib));
  EXPECT_GT(Misr::area(8).count(netlist::Cell::ScanDff), 0);
}

}  // namespace
