// Redundancy-analysis and repair tests: must-repair reasoning, optimality
// of the final analysis, pigeonhole unrepairability, and the full
// inject -> BIST -> bitmap -> allocate -> repair -> re-BIST loop.

#include <gtest/gtest.h>

#include "bist/session.h"
#include "march/library.h"
#include "mbist_ucode/controller.h"
#include "repair/repaired_memory.h"

namespace {

using namespace pmbist;
using memsim::Address;
using memsim::AddressScrambler;
using memsim::ArrayTopology;
using repair::RedundancyConfig;

constexpr memsim::MemoryGeometry kGeom{.address_bits = 6, .word_bits = 1,
                                       .num_ports = 1};
const ArrayTopology kTopo{6, 3, AddressScrambler::identity(6)};
// identity scrambling: addr = row*8 + col (8 rows x 8 cols)

diag::FailBitmap bitmap_of(const std::vector<Address>& failing) {
  diag::FailBitmap bm{kGeom};
  std::vector<march::Failure> failures;
  for (Address a : failing)
    failures.push_back({0, march::MemOp::read(0, a, 0), 1});
  bm.accumulate(failures);
  return bm;
}

TEST(Redundancy, CleanBitmapNeedsNothing) {
  const auto s = repair::allocate_redundancy(bitmap_of({}), kTopo,
                                             {.spare_rows = 1});
  EXPECT_TRUE(s.repairable);
  EXPECT_EQ(s.spares_used(), 0);
}

TEST(Redundancy, SingleFailEitherSpareWorks) {
  const auto bm = bitmap_of({19});  // row 2, col 3
  const auto s = repair::allocate_redundancy(
      bm, kTopo, {.spare_rows = 1, .spare_cols = 1});
  EXPECT_TRUE(s.repairable);
  EXPECT_EQ(s.spares_used(), 1);
  EXPECT_TRUE(repair::covers_all_failures(s, bm, kTopo));
}

TEST(Redundancy, MustRepairRow) {
  // Three fails in row 2 with only one spare column: the row MUST be
  // replaced.
  const auto bm = bitmap_of({16, 18, 21});  // row 2, cols 0,2,5
  const auto s = repair::allocate_redundancy(
      bm, kTopo, {.spare_rows = 1, .spare_cols = 1});
  ASSERT_TRUE(s.repairable);
  ASSERT_EQ(s.rows_replaced.size(), 1u);
  EXPECT_EQ(s.rows_replaced[0], 2u);
  EXPECT_TRUE(repair::covers_all_failures(s, bm, kTopo));
}

TEST(Redundancy, MustRepairColumn) {
  // Three fails in column 5 with only one spare row.
  const auto bm = bitmap_of({5, 13, 29});  // rows 0,1,3 col 5
  const auto s = repair::allocate_redundancy(
      bm, kTopo, {.spare_rows = 1, .spare_cols = 1});
  ASSERT_TRUE(s.repairable);
  ASSERT_EQ(s.cols_replaced.size(), 1u);
  EXPECT_EQ(s.cols_replaced[0], 5u);
}

TEST(Redundancy, DiagonalPigeonhole) {
  // k spares total cannot repair k+1 fails that share no row or column.
  const auto bm = bitmap_of({0, 9, 18});  // (0,0) (1,1) (2,2)
  const auto no = repair::allocate_redundancy(
      bm, kTopo, {.spare_rows = 1, .spare_cols = 1});
  EXPECT_FALSE(no.repairable);
  const auto yes = repair::allocate_redundancy(
      bm, kTopo, {.spare_rows = 2, .spare_cols = 1});
  EXPECT_TRUE(yes.repairable);
  EXPECT_EQ(yes.spares_used(), 3);
}

TEST(Redundancy, SolutionIsSpareMinimal) {
  // A full row of fails plus one isolated fail: 1 row + 1 (row or col).
  const auto bm = bitmap_of({8, 9, 10, 11, 36});  // row 1 + (4,4)
  const auto s = repair::allocate_redundancy(
      bm, kTopo, {.spare_rows = 2, .spare_cols = 2});
  ASSERT_TRUE(s.repairable);
  EXPECT_EQ(s.spares_used(), 2);
}

TEST(Redundancy, RejectsWordOrientedGeometry) {
  diag::FailBitmap bm{{.address_bits = 4, .word_bits = 8, .num_ports = 1}};
  const ArrayTopology topo{4, 2, AddressScrambler::identity(4)};
  EXPECT_THROW((void)repair::allocate_redundancy(bm, topo, {}),
               std::invalid_argument);
}

TEST(RepairedMemory, SteersReplacedCellsToSpares) {
  memsim::FaultyMemory defective{kGeom, 1};
  defective.add_fault(memsim::StuckAtFault{{18, 0}, true});  // row 2 col 2
  repair::RepairSolution s;
  s.repairable = true;
  s.rows_replaced = {2};
  repair::RepairedMemory fixed{defective, kTopo, s};
  fixed.write(0, 18, 0);
  EXPECT_EQ(fixed.read(0, 18), 0u);  // spare cell, not the stuck one
  fixed.write(0, 17, 1);             // row 2 too -> spare
  EXPECT_EQ(fixed.read(0, 17), 1u);
  fixed.write(0, 25, 1);             // row 3 -> the real array
  EXPECT_EQ(defective.peek(25), 1u);
}

TEST(RepairedMemory, RejectsUnrepairableSolution) {
  memsim::FaultyMemory mem{kGeom, 1};
  repair::RepairSolution bad;  // repairable = false
  EXPECT_THROW((repair::RepairedMemory{mem, kTopo, bad}),
               std::invalid_argument);
}

// The full loop: BIST finds the defects, the bitmap feeds allocation, the
// repaired view passes the same BIST program.
TEST(RepairFlow, InjectTestAllocateRepairRetest) {
  memsim::FaultyMemory defective{kGeom, 9};
  defective.add_fault(memsim::StuckAtFault{{10, 0}, true});
  defective.add_fault(memsim::StuckAtFault{{11, 0}, false});
  defective.add_fault(memsim::TransitionFault{{44, 0}, true});

  mbist_ucode::MicrocodeController bist{{.geometry = kGeom}};
  bist.load_algorithm(march::march_c());

  const auto before = bist::run_session(bist, defective,
                                        {.max_failures = 256});
  ASSERT_FALSE(before.passed());

  diag::FailBitmap bm{kGeom};
  bm.accumulate(before.failures);
  const auto solution = repair::allocate_redundancy(
      bm, kTopo, {.spare_rows = 2, .spare_cols = 2});
  ASSERT_TRUE(solution.repairable);
  EXPECT_TRUE(repair::covers_all_failures(solution, bm, kTopo));

  repair::RepairedMemory fixed{defective, kTopo, solution};
  const auto after = bist::run_session(bist, fixed);
  EXPECT_TRUE(after.passed());
}

// Scrambled topologies change which cells share a physical row — the
// allocator must work in physical space.
TEST(RepairFlow, WorksUnderScrambledTopology) {
  const ArrayTopology scrambled{6, 3, AddressScrambler::scrambled(6, 4)};
  // Three defects in the same *physical* row.
  const auto row_addrs = [&] {
    std::vector<Address> out;
    for (std::uint32_t c = 0; c < 3; ++c)
      out.push_back(scrambled.at({5, c}));
    return out;
  }();
  memsim::FaultyMemory defective{kGeom, 2};
  for (Address a : row_addrs)
    defective.add_fault(memsim::StuckAtFault{{a, 0}, true});

  mbist_ucode::MicrocodeController bist{{.geometry = kGeom}};
  bist.load_algorithm(march::march_c());
  const auto before = bist::run_session(bist, defective,
                                        {.max_failures = 256});
  diag::FailBitmap bm{kGeom};
  bm.accumulate(before.failures);

  const auto solution = repair::allocate_redundancy(
      bm, scrambled, {.spare_rows = 1, .spare_cols = 1});
  ASSERT_TRUE(solution.repairable);
  ASSERT_EQ(solution.rows_replaced.size(), 1u);
  EXPECT_EQ(solution.rows_replaced[0], 5u);  // must-repair found the row

  repair::RepairedMemory fixed{defective, scrambled, solution};
  EXPECT_TRUE(bist::run_session(bist, fixed).passed());
}

}  // namespace
