// Keeps the docs honest: every fenced ```march block in docs/DSL.md must
// parse and round-trip through to_string(), every ```march-error block must
// be rejected with march::ParseError — and likewise every ```chip block in
// docs/SOC.md must parse (and round-trip) through soc::parse_chip_text /
// every ```chip-error block must raise ChipError, and every ```profile
// block in docs/FIELD.md must parse (and round-trip) through
// field::parse_profile_text / every ```profile-error block must raise
// FieldError.  docs/LINT.md blocks tagged ```lint-<kind>:<CODE> are run
// through the linter and must emit the named diagnostic code, and every
// registered code must have such a block (api-only codes are pinned by
// prose mention + a unit test in test_lint.cpp).  docs/SERVE.md blocks
// tagged ```serve are request batches run through a fresh
// serve::Server's pipe transport twice — the event stream must be
// byte-stable, error-free and completely terminal — and every
// ```serve-error line must answer with exactly one error event.
// docs/KERNEL.md blocks
// tagged ```kernel-check:class=...:n=...:seed=... hold a march DSL body
// whose campaign is run under both the scalar and the packed kernel and
// must produce byte-identical detection records.  docs/BACKEND.md blocks
// tagged ```memtest-check:size=...[:backgrounds=N] hold a march DSL body
// run through the memtest engine on both the sim and the hostram backend
// and must PASS with identical signatures and op counts.  The docs and
// the tools cannot drift apart without this test failing.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "backend/memtest.h"
#include "common/json.h"
#include "field/profile.h"
#include "lint/diagnostics.h"
#include "lint/driver.h"
#include "march/campaign.h"
#include "march/coverage.h"
#include "march/parser.h"
#include "serve/server.h"
#include "soc/chip.h"
#include "soc/chip_json.h"

namespace {

using namespace pmbist;

struct DocExample {
  std::string text;
  std::size_t line;  // 1-based line of the opening fence
  bool must_fail;
};

std::string read_file(const std::string& path) {
  std::ifstream in{path};
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// Extracts fenced code blocks tagged `<tag>` / `<tag>-error`.
std::vector<DocExample> extract_examples(const std::string& doc,
                                         const std::string& tag = "march") {
  std::vector<DocExample> examples;
  std::istringstream lines{doc};
  std::string line;
  std::size_t lineno = 0;
  bool in_block = false;
  DocExample current;
  while (std::getline(lines, line)) {
    ++lineno;
    if (!in_block) {
      if (line == "```" + tag || line == "```" + tag + "-error") {
        in_block = true;
        current = DocExample{"", lineno, line == "```" + tag + "-error"};
      }
    } else if (line.rfind("```", 0) == 0) {
      in_block = false;
      examples.push_back(current);
    } else {
      current.text += line;
      current.text += '\n';
    }
  }
  EXPECT_FALSE(in_block) << "unterminated code fence";
  return examples;
}

std::vector<DocExample> doc_examples(const char* relative,
                                     const std::string& tag = "march") {
  return extract_examples(
      read_file(std::string{PMBIST_SOURCE_DIR} + "/" + relative), tag);
}

// A ```lint-<kind>:<CODE>[:storage-depth=N][:buffer-depth=N][:against=SRC]
// block from a doc file: linting `text` as `kind` must emit `code`.
// docs/LINT.md carries one block per code; docs/EQUIV.md uses the same
// fence syntax for its control-flow-recovery walkthrough.
struct LintExample {
  std::string kind;
  std::string code;
  std::string text;
  std::size_t line = 0;  // 1-based line of the opening fence
  lint::LintOptions options;
};

std::vector<LintExample> lint_doc_examples(
    const std::string& rel = "docs/LINT.md") {
  const auto doc = read_file(std::string{PMBIST_SOURCE_DIR} + "/" + rel);
  std::vector<LintExample> examples;
  std::istringstream lines{doc};
  std::string line;
  std::size_t lineno = 0;
  bool in_block = false;
  LintExample current;
  while (std::getline(lines, line)) {
    ++lineno;
    if (!in_block) {
      if (line.rfind("```lint-", 0) != 0) continue;
      in_block = true;
      current = LintExample{};
      current.line = lineno;
      // Split the info string "lint-<kind>:<CODE>[:key=value]..." fields.
      std::string info = line.substr(8);  // after "```lint-"
      std::vector<std::string> fields;
      std::size_t start = 0;
      while (start <= info.size()) {
        const auto colon = info.find(':', start);
        fields.push_back(info.substr(start, colon - start));
        if (colon == std::string::npos) break;
        start = colon + 1;
      }
      if (fields.size() < 2) {
        ADD_FAILURE() << rel << ":" << lineno << ": " << line;
        in_block = false;
        continue;
      }
      current.kind = fields[0];
      current.code = fields[1];
      for (std::size_t i = 2; i < fields.size(); ++i) {
        const auto eq = fields[i].find('=');
        if (eq == std::string::npos) {
          ADD_FAILURE() << rel << ":" << lineno << ": bad option "
                        << fields[i];
          continue;
        }
        const std::string key = fields[i].substr(0, eq);
        const std::string value = fields[i].substr(eq + 1);
        if (key == "storage-depth")
          current.options.storage_depth = std::atoi(value.c_str());
        else if (key == "buffer-depth")
          current.options.buffer_depth = std::atoi(value.c_str());
        else if (key == "against")  // no colons in names, spaces are fine
          current.options.against = value;
        else if (key == "chip")  // repo-relative path, read like --chip
          current.options.chip =
              read_file(std::string{PMBIST_SOURCE_DIR} + "/" + value);
        else if (key == "profile")  // repo-relative path, read like --profile
          current.options.profile =
              read_file(std::string{PMBIST_SOURCE_DIR} + "/" + value);
        else ADD_FAILURE() << rel << ":" << lineno << ": unknown option "
                           << key;
      }
    } else if (line.rfind("```", 0) == 0) {
      in_block = false;
      examples.push_back(current);
    } else {
      current.text += line;
      current.text += '\n';
    }
  }
  EXPECT_FALSE(in_block) << "unterminated lint code fence";
  return examples;
}

// A ```kernel-check:class=CLS:n=N:seed=S[:addr-bits=A][:word-bits=W]
// [:ports=P] block from docs/KERNEL.md: the march DSL body is campaigned
// over N sampled CLS instances under both kernels, which must agree.
struct KernelExample {
  memsim::FaultClass cls = memsim::FaultClass::SAF;
  int instances = 0;
  std::uint64_t seed = 0;
  memsim::MemoryGeometry geometry{.address_bits = 4, .word_bits = 1,
                                  .num_ports = 1};
  std::string text;
  std::size_t line = 0;  // 1-based line of the opening fence
};

std::vector<KernelExample> kernel_doc_examples() {
  const auto doc = read_file(std::string{PMBIST_SOURCE_DIR} +
                             "/docs/KERNEL.md");
  std::vector<KernelExample> examples;
  std::istringstream lines{doc};
  std::string line;
  std::size_t lineno = 0;
  bool in_block = false;
  KernelExample current;
  while (std::getline(lines, line)) {
    ++lineno;
    if (!in_block) {
      if (line.rfind("```kernel-check:", 0) != 0) continue;
      in_block = true;
      current = KernelExample{};
      current.line = lineno;
      // Split the "key=value[:key=value]..." info fields.
      std::string info = line.substr(16);  // after "```kernel-check:"
      std::vector<std::string> fields;
      std::size_t start = 0;
      while (start <= info.size()) {
        const auto colon = info.find(':', start);
        fields.push_back(info.substr(start, colon - start));
        if (colon == std::string::npos) break;
        start = colon + 1;
      }
      for (const auto& field : fields) {
        const auto eq = field.find('=');
        if (eq == std::string::npos) {
          ADD_FAILURE() << "docs/KERNEL.md:" << lineno << ": bad option "
                        << field;
          continue;
        }
        const std::string key = field.substr(0, eq);
        const std::string value = field.substr(eq + 1);
        if (key == "class") {
          bool found = false;
          for (const auto cls : memsim::all_fault_classes())
            if (memsim::fault_class_name(cls) == value) {
              current.cls = cls;
              found = true;
            }
          EXPECT_TRUE(found) << "docs/KERNEL.md:" << lineno
                             << ": unknown fault class " << value;
        } else if (key == "n")
          current.instances = std::atoi(value.c_str());
        else if (key == "seed")
          current.seed = std::strtoull(value.c_str(), nullptr, 10);
        else if (key == "addr-bits")
          current.geometry.address_bits = std::atoi(value.c_str());
        else if (key == "word-bits")
          current.geometry.word_bits = std::atoi(value.c_str());
        else if (key == "ports")
          current.geometry.num_ports = std::atoi(value.c_str());
        else ADD_FAILURE() << "docs/KERNEL.md:" << lineno
                           << ": unknown option " << key;
      }
    } else if (line.rfind("```", 0) == 0) {
      in_block = false;
      examples.push_back(current);
    } else {
      current.text += line;
      current.text += '\n';
    }
  }
  EXPECT_FALSE(in_block) << "unterminated kernel-check code fence";
  return examples;
}

// A ```memtest-check:size=BYTES[:backgrounds=N] block from
// docs/BACKEND.md: the march DSL body is run through the memtest engine
// on both backends, which must agree.
struct MemtestExample {
  std::uint64_t size_bytes = 0;
  int backgrounds = 1;
  std::string text;
  std::size_t line = 0;  // 1-based line of the opening fence
};

std::vector<MemtestExample> memtest_doc_examples() {
  const auto doc = read_file(std::string{PMBIST_SOURCE_DIR} +
                             "/docs/BACKEND.md");
  std::vector<MemtestExample> examples;
  std::istringstream lines{doc};
  std::string line;
  std::size_t lineno = 0;
  bool in_block = false;
  MemtestExample current;
  while (std::getline(lines, line)) {
    ++lineno;
    if (!in_block) {
      if (line.rfind("```memtest-check:", 0) != 0) continue;
      in_block = true;
      current = MemtestExample{};
      current.line = lineno;
      // Split the "key=value[:key=value]..." info fields.
      std::string info = line.substr(17);  // after "```memtest-check:"
      std::vector<std::string> fields;
      std::size_t start = 0;
      while (start <= info.size()) {
        const auto colon = info.find(':', start);
        fields.push_back(info.substr(start, colon - start));
        if (colon == std::string::npos) break;
        start = colon + 1;
      }
      for (const auto& field : fields) {
        const auto eq = field.find('=');
        if (eq == std::string::npos) {
          ADD_FAILURE() << "docs/BACKEND.md:" << lineno << ": bad option "
                        << field;
          continue;
        }
        const std::string key = field.substr(0, eq);
        const std::string value = field.substr(eq + 1);
        if (key == "size") {
          const auto bytes = backend::parse_size_bytes(value);
          EXPECT_TRUE(bytes.has_value())
              << "docs/BACKEND.md:" << lineno << ": bad size " << value;
          current.size_bytes = bytes.value_or(0);
        } else if (key == "backgrounds")
          current.backgrounds = std::atoi(value.c_str());
        else ADD_FAILURE() << "docs/BACKEND.md:" << lineno
                           << ": unknown option " << key;
      }
    } else if (line.rfind("```", 0) == 0) {
      in_block = false;
      examples.push_back(current);
    } else {
      current.text += line;
      current.text += '\n';
    }
  }
  EXPECT_FALSE(in_block) << "unterminated memtest-check code fence";
  return examples;
}

lint::InputKind lint_kind_of(const std::string& kind) {
  if (kind == "march") return lint::InputKind::March;
  if (kind == "ucode") return lint::InputKind::UcodeImage;
  if (kind == "pfsm") return lint::InputKind::PfsmImage;
  if (kind == "chip") return lint::InputKind::Chip;
  if (kind == "profile") return lint::InputKind::Profile;
  if (kind == "soc-schedule") return lint::InputKind::SocSchedule;
  if (kind == "field-schedule") return lint::InputKind::FieldSchedule;
  ADD_FAILURE() << "unknown lint block kind " << kind;
  return lint::InputKind::March;
}

TEST(DocExamples, DslDocHasExamples) {
  const auto examples = doc_examples("docs/DSL.md");
  int valid = 0, invalid = 0;
  for (const auto& e : examples) (e.must_fail ? invalid : valid)++;
  // The doc promises at least one round-trip example per construct and a
  // rejection example per error class.
  EXPECT_GE(valid, 6);
  EXPECT_GE(invalid, 7);
}

TEST(DocExamples, ValidExamplesParseAndRoundTrip) {
  for (const auto& e : doc_examples("docs/DSL.md")) {
    if (e.must_fail) continue;
    SCOPED_TRACE("docs/DSL.md:" + std::to_string(e.line));
    march::MarchAlgorithm alg{"", {}};
    ASSERT_NO_THROW(alg = march::parse(e.text)) << e.text;
    EXPECT_FALSE(alg.elements().empty());
    // Round trip: the canonical printed form re-parses to the same
    // algorithm.
    const auto printed = alg.to_string();
    march::MarchAlgorithm again{"", {}};
    ASSERT_NO_THROW(again = march::parse(printed, alg.name())) << printed;
    EXPECT_EQ(alg, again) << printed;
  }
}

TEST(DocExamples, ErrorExamplesAreRejected) {
  for (const auto& e : doc_examples("docs/DSL.md")) {
    if (!e.must_fail) continue;
    SCOPED_TRACE("docs/DSL.md:" + std::to_string(e.line));
    EXPECT_THROW((void)march::parse(e.text), march::ParseError) << e.text;
  }
}

TEST(DocExamples, SocDocHasExamples) {
  const auto examples = doc_examples("docs/SOC.md", "chip");
  int valid = 0, invalid = 0;
  for (const auto& e : examples) (e.must_fail ? invalid : valid)++;
  EXPECT_GE(valid, 3);
  EXPECT_GE(invalid, 3);
}

TEST(DocExamples, ChipExamplesParseAndRoundTrip) {
  for (const auto& e : doc_examples("docs/SOC.md", "chip")) {
    if (e.must_fail) continue;
    SCOPED_TRACE("docs/SOC.md:" + std::to_string(e.line));
    soc::ChipFile chip;
    ASSERT_NO_THROW(chip = soc::parse_chip_text(e.text)) << e.text;
    EXPECT_FALSE(chip.description.memories().empty());
    // The serialized form re-parses to the same chip.
    const auto printed = soc::to_chip_text(chip.description, chip.plan);
    soc::ChipFile again;
    ASSERT_NO_THROW(again = soc::parse_chip_text(printed)) << printed;
    EXPECT_EQ(again.description, chip.description) << printed;
    EXPECT_EQ(again.plan, chip.plan) << printed;
  }
}

TEST(DocExamples, ChipErrorExamplesAreRejected) {
  for (const auto& e : doc_examples("docs/SOC.md", "chip")) {
    if (!e.must_fail) continue;
    SCOPED_TRACE("docs/SOC.md:" + std::to_string(e.line));
    EXPECT_THROW((void)soc::parse_chip_text(e.text), soc::ChipError)
        << e.text;
  }
}

TEST(DocExamples, ChipJsonExamplesParseAndRoundTrip) {
  const auto examples = doc_examples("docs/SOC.md", "chip-json");
  int valid = 0, invalid = 0;
  for (const auto& e : examples) (e.must_fail ? invalid : valid)++;
  EXPECT_GE(valid, 1);
  EXPECT_GE(invalid, 1);
  for (const auto& e : examples) {
    SCOPED_TRACE("docs/SOC.md:" + std::to_string(e.line));
    if (e.must_fail) {
      EXPECT_THROW((void)soc::parse_chip_json(e.text), soc::ChipError)
          << e.text;
      continue;
    }
    soc::ChipFile chip;
    ASSERT_NO_THROW(chip = soc::parse_chip_json(e.text)) << e.text;
    EXPECT_FALSE(chip.description.memories().empty());
    // The serialized mirror re-parses to the same chip, and parse_chip
    // sniffs the format from the leading '{'.
    const auto printed =
        soc::serialize_chip_json(chip.description, chip.plan);
    soc::ChipFile again;
    ASSERT_NO_THROW(again = soc::parse_chip_json(printed)) << printed;
    EXPECT_EQ(again.description, chip.description) << printed;
    EXPECT_EQ(again.plan, chip.plan) << printed;
    EXPECT_EQ(soc::parse_chip(e.text).description, chip.description);
  }
}

TEST(DocExamples, FieldDocHasExamples) {
  const auto examples = doc_examples("docs/FIELD.md", "profile");
  int valid = 0, invalid = 0;
  for (const auto& e : examples) (e.must_fail ? invalid : valid)++;
  EXPECT_GE(valid, 2);
  EXPECT_GE(invalid, 2);
}

TEST(DocExamples, ProfileExamplesParseAndRoundTrip) {
  for (const auto& e : doc_examples("docs/FIELD.md", "profile")) {
    if (e.must_fail) continue;
    SCOPED_TRACE("docs/FIELD.md:" + std::to_string(e.line));
    field::MissionProfile profile;
    ASSERT_NO_THROW(profile = field::parse_profile_text(e.text)) << e.text;
    EXPECT_FALSE(profile.windows.empty());
    // The serialized form re-parses to the same profile.
    const auto printed = field::to_profile_text(profile);
    field::MissionProfile again;
    ASSERT_NO_THROW(again = field::parse_profile_text(printed)) << printed;
    EXPECT_EQ(again, profile) << printed;
  }
}

TEST(DocExamples, ProfileErrorExamplesAreRejected) {
  for (const auto& e : doc_examples("docs/FIELD.md", "profile")) {
    if (!e.must_fail) continue;
    SCOPED_TRACE("docs/FIELD.md:" + std::to_string(e.line));
    EXPECT_THROW((void)field::parse_profile_text(e.text), field::FieldError)
        << e.text;
  }
}

TEST(DocExamples, LintExamplesEmitTheirCode) {
  for (const char* rel : {"docs/LINT.md", "docs/EQUIV.md"}) {
    for (const auto& e : lint_doc_examples(rel)) {
      SCOPED_TRACE(std::string{rel} + ":" + std::to_string(e.line));
      ASSERT_NE(lint::find_code(e.code), nullptr)
          << "block names unregistered code " << e.code;
      const auto report = lint::lint_text_as(lint_kind_of(e.kind), e.text,
                                             "doc-example", e.options);
      EXPECT_TRUE(report.has_code(e.code))
          << "block does not trigger " << e.code << "; got:\n"
          << lint::format_text(report);
      // The auto-detector must agree with the block's declared kind, since
      // `pmbist lint` relies on it.
      EXPECT_EQ(lint::detect_kind(e.text), lint_kind_of(e.kind));
    }
  }
}

TEST(DocExamples, EveryLintCodeIsDocumented) {
  const auto examples = lint_doc_examples();
  const auto doc = read_file(std::string{PMBIST_SOURCE_DIR} +
                             "/docs/LINT.md");
  for (const auto& info : lint::all_codes()) {
    const std::string code{info.code};
    if (info.api_only) {
      // Not expressible in any on-disk input; pinned by prose here and a
      // unit test in test_lint.cpp.
      EXPECT_NE(doc.find(code), std::string::npos)
          << code << " is not mentioned in docs/LINT.md";
      continue;
    }
    bool documented = false;
    for (const auto& e : examples) documented |= e.code == code;
    EXPECT_TRUE(documented)
        << code << " has no ```lint-<kind>:" << code
        << " example block in docs/LINT.md";
  }
}

TEST(DocExamples, CampaignsDocExists) {
  // CAMPAIGNS.md carries C++ snippets, not DSL blocks; just pin the cross
  // references so a rename breaks loudly.
  const auto doc = read_file(std::string{PMBIST_SOURCE_DIR} +
                             "/docs/CAMPAIGNS.md");
  EXPECT_NE(doc.find("determinism contract"), std::string::npos);
  EXPECT_NE(doc.find("run_campaign"), std::string::npos);
  for (const auto& e : extract_examples(doc)) {
    if (!e.must_fail) {
      EXPECT_NO_THROW((void)march::parse(e.text));
    }
  }
}

TEST(DocExamples, ServeDocHasExamples) {
  const auto examples = doc_examples("docs/SERVE.md", "serve");
  int valid = 0, invalid = 0;
  for (const auto& e : examples) (e.must_fail ? invalid : valid)++;
  EXPECT_GE(valid, 3);
  EXPECT_GE(invalid, 3);
}

TEST(DocExamples, ServeExamplesAreByteStableAndErrorFree) {
  for (const auto& e : doc_examples("docs/SERVE.md", "serve")) {
    if (e.must_fail) continue;
    SCOPED_TRACE("docs/SERVE.md:" + std::to_string(e.line));

    auto run = [&] {
      serve::Server server{{.sessions = 1}};
      std::istringstream in{e.text};
      std::ostringstream out;
      server.run_pipe(in, out);
      return out.str();
    };
    const std::string first = run();
    EXPECT_EQ(first, run()) << "pipe batch is not byte-stable";

    // Every event line parses, none is an error, and every request in
    // the batch reaches a terminal event.
    std::vector<std::string> pending_ids;
    {
      std::istringstream requests{e.text};
      for (std::string line; std::getline(requests, line);) {
        const auto req = serve::parse_request(line);
        if (req.kind != serve::RequestKind::Cancel) pending_ids.push_back(req.id);
      }
    }
    std::istringstream events{first};
    for (std::string line; std::getline(events, line);) {
      common::json::Value doc;
      ASSERT_NO_THROW(doc = common::json::Value::parse(line)) << line;
      const auto* event = doc.find("event");
      ASSERT_NE(event, nullptr) << line;
      EXPECT_NE(event->as_string(), "error") << line;
      if (event->as_string() == "result" || event->as_string() == "cancelled")
        std::erase(pending_ids, doc.find("id")->as_string());
    }
    EXPECT_TRUE(pending_ids.empty())
        << pending_ids.size() << " request(s) never reached a terminal event";
  }
}

TEST(DocExamples, ServeErrorExamplesAnswerWithErrorEvents) {
  serve::Server server{{.sessions = 1}};
  for (const auto& e : doc_examples("docs/SERVE.md", "serve")) {
    if (!e.must_fail) continue;
    SCOPED_TRACE("docs/SERVE.md:" + std::to_string(e.line));
    std::istringstream lines{e.text};
    for (std::string line; std::getline(lines, line);) {
      const auto events = server.call(line);
      ASSERT_EQ(events.size(), 1u) << line;
      const auto doc = common::json::Value::parse(events[0]);
      EXPECT_EQ(doc.find("event")->as_string(), "error") << line;
    }
  }
}

TEST(DocExamples, KernelDocExists) {
  // KERNEL.md documents the packed engine; pin the cross references so a
  // rename breaks loudly.
  const auto doc = read_file(std::string{PMBIST_SOURCE_DIR} +
                             "/docs/KERNEL.md");
  EXPECT_NE(doc.find("PackedFaultyMemory"), std::string::npos);
  EXPECT_NE(doc.find("lane-pack"), std::string::npos);
  EXPECT_NE(doc.find("--kernel scalar|packed"), std::string::npos);
  EXPECT_NE(doc.find("byte-identical"), std::string::npos);
  EXPECT_NE(doc.find("docs/CAMPAIGNS.md"), std::string::npos);
}

TEST(DocExamples, KernelDocHasExamples) {
  EXPECT_GE(kernel_doc_examples().size(), 3u);
}

TEST(DocExamples, KernelCheckExamplesAgreeAcrossKernels) {
  for (const auto& e : kernel_doc_examples()) {
    SCOPED_TRACE("docs/KERNEL.md:" + std::to_string(e.line));
    ASSERT_GT(e.instances, 0) << "block needs n=<instances>";

    // The body is an ordinary march DSL algorithm.
    march::MarchAlgorithm alg{"", {}};
    ASSERT_NO_THROW(alg = march::parse(e.text, "doc-example")) << e.text;

    const auto universe =
        march::make_fault_universe(e.cls, e.geometry, e.seed, e.instances);
    ASSERT_FALSE(universe.empty());

    const auto scalar = march::run_campaign(
        alg, e.geometry, universe,
        {.jobs = 1, .powerup_seed = e.seed,
         .kernel = march::CampaignKernel::Scalar});
    const auto packed = march::run_campaign(
        alg, e.geometry, universe,
        {.jobs = 2, .powerup_seed = e.seed,
         .kernel = march::CampaignKernel::Packed});

    // The documented contract: byte-identical records, any jobs count.
    EXPECT_EQ(scalar.records, packed.records);
    // And the examples are meaningful campaigns, not vacuous ones.
    EXPECT_GT(packed.detected(), 0);
  }
}

TEST(DocExamples, BackendDocExists) {
  // BACKEND.md documents the pluggable backend; pin the cross references
  // so a rename breaks loudly.
  const auto doc = read_file(std::string{PMBIST_SOURCE_DIR} +
                             "/docs/BACKEND.md");
  EXPECT_NE(doc.find("MemoryBackend"), std::string::npos);
  EXPECT_NE(doc.find("SimBackend"), std::string::npos);
  EXPECT_NE(doc.find("HostRamBackend"), std::string::npos);
  EXPECT_NE(doc.find("--backend sim|hostram"), std::string::npos);
  EXPECT_NE(doc.find("pmbist memtest"), std::string::npos);
  EXPECT_NE(doc.find("mapped_words"), std::string::npos);
  EXPECT_NE(doc.find("BENCH_backend.json"), std::string::npos);
}

TEST(DocExamples, BackendDocHasExamples) {
  EXPECT_GE(memtest_doc_examples().size(), 3u);
}

TEST(DocExamples, MemtestCheckExamplesAgreeAcrossBackends) {
  for (const auto& e : memtest_doc_examples()) {
    SCOPED_TRACE("docs/BACKEND.md:" + std::to_string(e.line));
    ASSERT_GT(e.size_bytes, 0u) << "block needs size=<bytes>";

    // The body is an ordinary march DSL algorithm.
    march::MarchAlgorithm alg{"", {}};
    ASSERT_NO_THROW(alg = march::parse(e.text, "doc-example")) << e.text;

    auto run = [&](backend::BackendKind kind) {
      backend::MemtestOptions opts;
      opts.size_bytes = e.size_bytes;
      opts.backgrounds = e.backgrounds;
      opts.jobs = 2;
      opts.backend = kind;
      return backend::run_memtest(alg, opts);
    };
    const auto sim = run(backend::BackendKind::Sim);
    const auto host = run(backend::BackendKind::HostRam);

    // The documented contract: identical deterministic reports (past the
    // header line, which names the backend), PASS.
    auto body = [](const backend::MemtestReport& r) {
      const auto text = backend::format_memtest_report(r);
      return text.substr(text.find('\n') + 1);
    };
    EXPECT_EQ(body(sim), body(host));
    EXPECT_EQ(sim.signature, host.signature);
    EXPECT_EQ(sim.reads, host.reads);
    EXPECT_EQ(sim.writes, host.writes);
    EXPECT_TRUE(sim.passed());
    EXPECT_TRUE(host.passed());
  }
}

}  // namespace
