// Keeps the docs honest: every fenced ```march block in docs/DSL.md must
// parse and round-trip through to_string(), every ```march-error block must
// be rejected with march::ParseError — and likewise every ```chip block in
// docs/SOC.md must parse (and round-trip) through soc::parse_chip_text,
// every ```chip-error block must raise ChipError.  The docs and the parsers
// cannot drift apart without this test failing.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "march/parser.h"
#include "soc/chip.h"

namespace {

using namespace pmbist;

struct DocExample {
  std::string text;
  std::size_t line;  // 1-based line of the opening fence
  bool must_fail;
};

std::string read_file(const std::string& path) {
  std::ifstream in{path};
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// Extracts fenced code blocks tagged `<tag>` / `<tag>-error`.
std::vector<DocExample> extract_examples(const std::string& doc,
                                         const std::string& tag = "march") {
  std::vector<DocExample> examples;
  std::istringstream lines{doc};
  std::string line;
  std::size_t lineno = 0;
  bool in_block = false;
  DocExample current;
  while (std::getline(lines, line)) {
    ++lineno;
    if (!in_block) {
      if (line == "```" + tag || line == "```" + tag + "-error") {
        in_block = true;
        current = DocExample{"", lineno, line == "```" + tag + "-error"};
      }
    } else if (line.rfind("```", 0) == 0) {
      in_block = false;
      examples.push_back(current);
    } else {
      current.text += line;
      current.text += '\n';
    }
  }
  EXPECT_FALSE(in_block) << "unterminated code fence";
  return examples;
}

std::vector<DocExample> doc_examples(const char* relative,
                                     const std::string& tag = "march") {
  return extract_examples(
      read_file(std::string{PMBIST_SOURCE_DIR} + "/" + relative), tag);
}

TEST(DocExamples, DslDocHasExamples) {
  const auto examples = doc_examples("docs/DSL.md");
  int valid = 0, invalid = 0;
  for (const auto& e : examples) (e.must_fail ? invalid : valid)++;
  // The doc promises at least one round-trip example per construct and a
  // rejection example per error class.
  EXPECT_GE(valid, 6);
  EXPECT_GE(invalid, 7);
}

TEST(DocExamples, ValidExamplesParseAndRoundTrip) {
  for (const auto& e : doc_examples("docs/DSL.md")) {
    if (e.must_fail) continue;
    SCOPED_TRACE("docs/DSL.md:" + std::to_string(e.line));
    march::MarchAlgorithm alg{"", {}};
    ASSERT_NO_THROW(alg = march::parse(e.text)) << e.text;
    EXPECT_FALSE(alg.elements().empty());
    // Round trip: the canonical printed form re-parses to the same
    // algorithm.
    const auto printed = alg.to_string();
    march::MarchAlgorithm again{"", {}};
    ASSERT_NO_THROW(again = march::parse(printed, alg.name())) << printed;
    EXPECT_EQ(alg, again) << printed;
  }
}

TEST(DocExamples, ErrorExamplesAreRejected) {
  for (const auto& e : doc_examples("docs/DSL.md")) {
    if (!e.must_fail) continue;
    SCOPED_TRACE("docs/DSL.md:" + std::to_string(e.line));
    EXPECT_THROW((void)march::parse(e.text), march::ParseError) << e.text;
  }
}

TEST(DocExamples, SocDocHasExamples) {
  const auto examples = doc_examples("docs/SOC.md", "chip");
  int valid = 0, invalid = 0;
  for (const auto& e : examples) (e.must_fail ? invalid : valid)++;
  EXPECT_GE(valid, 3);
  EXPECT_GE(invalid, 3);
}

TEST(DocExamples, ChipExamplesParseAndRoundTrip) {
  for (const auto& e : doc_examples("docs/SOC.md", "chip")) {
    if (e.must_fail) continue;
    SCOPED_TRACE("docs/SOC.md:" + std::to_string(e.line));
    soc::ChipFile chip;
    ASSERT_NO_THROW(chip = soc::parse_chip_text(e.text)) << e.text;
    EXPECT_FALSE(chip.description.memories().empty());
    // The serialized form re-parses to the same chip.
    const auto printed = soc::to_chip_text(chip.description, chip.plan);
    soc::ChipFile again;
    ASSERT_NO_THROW(again = soc::parse_chip_text(printed)) << printed;
    EXPECT_EQ(again.description, chip.description) << printed;
    EXPECT_EQ(again.plan, chip.plan) << printed;
  }
}

TEST(DocExamples, ChipErrorExamplesAreRejected) {
  for (const auto& e : doc_examples("docs/SOC.md", "chip")) {
    if (!e.must_fail) continue;
    SCOPED_TRACE("docs/SOC.md:" + std::to_string(e.line));
    EXPECT_THROW((void)soc::parse_chip_text(e.text), soc::ChipError)
        << e.text;
  }
}

TEST(DocExamples, CampaignsDocExists) {
  // CAMPAIGNS.md carries C++ snippets, not DSL blocks; just pin the cross
  // references so a rename breaks loudly.
  const auto doc = read_file(std::string{PMBIST_SOURCE_DIR} +
                             "/docs/CAMPAIGNS.md");
  EXPECT_NE(doc.find("determinism contract"), std::string::npos);
  EXPECT_NE(doc.find("run_campaign"), std::string::npos);
  for (const auto& e : extract_examples(doc)) {
    if (!e.must_fail) {
      EXPECT_NO_THROW((void)march::parse(e.text));
    }
  }
}

}  // namespace
