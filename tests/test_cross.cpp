// Cross-architecture integration tests: the three controller families must
// be behaviourally interchangeable where their flexibility overlaps, and
// the area models must reproduce the paper's Section 3 observations.

#include <gtest/gtest.h>

#include "bist/session.h"
#include "march/library.h"
#include "mbist_hardwired/area.h"
#include "mbist_hardwired/controller.h"
#include "mbist_pfsm/area.h"
#include "mbist_pfsm/controller.h"
#include "mbist_ucode/area.h"
#include "mbist_ucode/controller.h"

namespace {

using namespace pmbist;
using memsim::MemoryGeometry;

constexpr MemoryGeometry kGeom{.address_bits = 4, .word_bits = 2,
                               .num_ports = 2};

// --- behavioural interchangeability ----------------------------------------

TEST(Cross, AllThreeControllersEmitIdenticalStreams) {
  for (const char* name : {"MATS+", "March C", "March C+", "March A+"}) {
    const auto alg = march::by_name(name);

    mbist_ucode::MicrocodeController ucode{{.geometry = kGeom}};
    ucode.load_algorithm(alg);
    mbist_pfsm::PfsmController pfsm{{.geometry = kGeom}};
    pfsm.load_algorithm(alg);
    mbist_hardwired::HardwiredController hw{alg, {.geometry = kGeom}};

    const auto su = bist::collect_ops(ucode, 100'000'000);
    const auto sp = bist::collect_ops(pfsm, 100'000'000);
    const auto sh = bist::collect_ops(hw, 100'000'000);
    EXPECT_EQ(su, sp) << name;
    EXPECT_EQ(su, sh) << name;
    EXPECT_EQ(su, march::expand(alg, kGeom)) << name;
  }
}

TEST(Cross, IdenticalFaultVerdicts) {
  const auto alg = march::march_c();
  const std::vector<memsim::Fault> faults{
      memsim::StuckAtFault{{7, 1}, true},
      memsim::TransitionFault{{3, 0}, true},
      memsim::InversionCouplingFault{{2, 0}, {12, 1}, false},
      memsim::AddressDecoderFault{5, {9}},
  };
  for (const auto& fault : faults) {
    auto make_mem = [&] {
      auto mem = std::make_unique<memsim::FaultyMemory>(kGeom, 33);
      mem->add_fault(fault);
      return mem;
    };
    mbist_ucode::MicrocodeController ucode{{.geometry = kGeom}};
    ucode.load_algorithm(alg);
    mbist_pfsm::PfsmController pfsm{{.geometry = kGeom}};
    pfsm.load_algorithm(alg);
    mbist_hardwired::HardwiredController hw{alg, {.geometry = kGeom}};

    auto m1 = make_mem();
    auto m2 = make_mem();
    auto m3 = make_mem();
    const auto r1 = bist::run_session(ucode, *m1);
    const auto r2 = bist::run_session(pfsm, *m2);
    const auto r3 = bist::run_session(hw, *m3);
    EXPECT_FALSE(r1.passed()) << memsim::describe(fault);
    EXPECT_EQ(r1.passed(), r2.passed());
    EXPECT_EQ(r1.passed(), r3.passed());
    ASSERT_FALSE(r1.failures.empty());
    ASSERT_FALSE(r2.failures.empty());
    // Same first failing cell regardless of controller.
    EXPECT_EQ(r1.failures.front().op.addr, r2.failures.front().op.addr);
    EXPECT_EQ(r1.failures.front().op.addr, r3.failures.front().op.addr);
  }
}

// The microcode controller executes one op per cycle with zero inter-element
// overhead; the two-level pFSM pays Reset/Done cycles per component.  Both
// must beat no useful work, and microcode must not be slower than pFSM.
TEST(Cross, MicrocodeIsAtLeastAsFastAsPfsm) {
  const MemoryGeometry g{.address_bits = 6};
  for (const char* name : {"March C", "March A", "March Y"}) {
    const auto alg = march::by_name(name);
    mbist_ucode::MicrocodeController ucode{{.geometry = g}};
    ucode.load_algorithm(alg);
    mbist_pfsm::PfsmController pfsm{{.geometry = g}};
    pfsm.load_algorithm(alg);
    const auto cu = bist::count_cycles(ucode, 10'000'000);
    const auto cp = bist::count_cycles(pfsm, 10'000'000);
    EXPECT_LE(cu, cp) << name;
    EXPECT_GE(cu, march::expanded_op_count(alg, g)) << name;
  }
}

// --- the paper's Section 3 observations --------------------------------------

struct PaperAreas {
  double ucode_fullscan;
  double ucode_adjusted;
  double pfsm;
  std::map<std::string, double> hardwired;
};

PaperAreas compute_areas(const MemoryGeometry& g) {
  const auto lib = netlist::TechLibrary::cmos5s();
  PaperAreas out{};
  mbist_ucode::AreaConfig uc{.geometry = g};
  out.ucode_fullscan = mbist_ucode::microcode_area(uc).total_ge(lib);
  uc.storage_cell = netlist::StorageCellClass::ScanOnly;
  out.ucode_adjusted = mbist_ucode::microcode_area(uc).total_ge(lib);
  out.pfsm =
      mbist_pfsm::pfsm_area({.geometry = g}).total_ge(lib);
  for (const auto& alg : march::paper_table_algorithms())
    out.hardwired[alg.name()] =
        mbist_hardwired::hardwired_area(alg, {.geometry = g}).total_ge(lib);
  return out;
}

TEST(PaperObservations, StorageRedesignShrinksMicrocodeController) {
  // Observation 1: the scan-only storage redesign cuts the microcode unit
  // by roughly half (the paper's garbled "approximately 6_%" figure; our
  // model lands in the 40-70% band because the storage unit dominates).
  const auto a = compute_areas({.address_bits = 10});
  const double reduction =
      (a.ucode_fullscan - a.ucode_adjusted) / a.ucode_fullscan;
  EXPECT_GT(reduction, 0.40);
  EXPECT_LT(reduction, 0.70);
}

TEST(PaperObservations, AdjustedMicrocodeBeatsPfsmOnAreaAndFlexibility) {
  // Observation 2 / abstract: better flexibility AND lower overhead.
  const auto a = compute_areas({.address_bits = 10});
  EXPECT_LT(a.ucode_adjusted, a.pfsm);
  // Flexibility: microcode runs the ++ algorithms, the pFSM cannot.
  mbist_ucode::MicrocodeController ucode{
      {.geometry = {.address_bits = 10}}};
  EXPECT_NO_THROW(ucode.load_algorithm(march::march_c_plus_plus()));
  EXPECT_FALSE(mbist_pfsm::is_mappable(march::march_c_plus_plus()));
}

TEST(PaperObservations, HardwiredGrowsWithEnhancement) {
  // Observation 3.
  const auto a = compute_areas({.address_bits = 10});
  EXPECT_LT(a.hardwired.at("March C"), a.hardwired.at("March C+"));
  EXPECT_LT(a.hardwired.at("March C+"), a.hardwired.at("March C++"));
  EXPECT_LT(a.hardwired.at("March A"), a.hardwired.at("March A+"));
  EXPECT_LT(a.hardwired.at("March A+"), a.hardwired.at("March A++"));
}

TEST(PaperObservations, GapNarrowsAsHardwiredIsEnhanced) {
  // Observation 4: the microcode-vs-hardwired difference shrinks as the
  // non-programmable unit's capability grows (within each algorithm
  // family; across families the synthesized-logic sizes are close enough
  // to wobble).
  const auto a = compute_areas({.address_bits = 10});
  auto gap = [&](const char* name) {
    return a.ucode_adjusted - a.hardwired.at(name);
  };
  EXPECT_GT(gap("March C"), gap("March C+"));
  EXPECT_GT(gap("March C+"), gap("March C++"));
  EXPECT_GT(gap("March A"), gap("March A+"));
  EXPECT_GT(gap("March A+"), gap("March A++"));
  // Every hardwired unit is still smaller than the programmable ones
  // (programmability is never free).
  for (const auto& [name, ge] : a.hardwired) {
    EXPECT_LT(ge, a.ucode_adjusted) << name;
    EXPECT_LT(ge, a.pfsm) << name;
  }
}

TEST(PaperObservations, Table2ExtensionsGrowEveryArchitecture) {
  const auto bit = compute_areas({.address_bits = 10});
  const auto word =
      compute_areas({.address_bits = 10, .word_bits = 8, .num_ports = 1});
  const auto multi =
      compute_areas({.address_bits = 10, .word_bits = 8, .num_ports = 2});
  EXPECT_LT(bit.ucode_adjusted, word.ucode_adjusted);
  EXPECT_LT(word.ucode_adjusted, multi.ucode_adjusted);
  EXPECT_LT(bit.pfsm, word.pfsm);
  EXPECT_LT(bit.hardwired.at("March C"), word.hardwired.at("March C"));
  EXPECT_LT(word.hardwired.at("March C"), multi.hardwired.at("March C"));
}

}  // namespace
