# FP04 (with --chip soc_demo.chip): 'l3_cache' is not a chip memory.
profile unknown_mem_case
horizon 100000

window icache   start=0 end=3000
window l3_cache start=0 end=3000
