# FP02: a zero-width window can never hold a test segment.
profile zero_width_case
horizon 100000

window icache start=4000 end=4000
window dcache start=0 end=2500
