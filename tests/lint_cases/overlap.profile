# FP01: the two icache windows overlap — a memory is either idle or not.
profile overlap_case
horizon 100000
bus_budget 1

window icache start=0 end=3000
window icache start=2000 end=5000
