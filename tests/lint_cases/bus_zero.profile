# FP03: bus budget 0 gives the test bus no lanes — nothing can ever run.
profile bus_zero_case
horizon 100000
bus_budget 0

window icache start=0 end=3000
