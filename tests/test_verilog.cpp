// Verilog emission tests: expression rendering, the structured case-arm
// intermediate (verified against MooreFsm::step on every state/input), and
// the rendered RTL's structural properties for generated hardwired
// controllers.

#include <gtest/gtest.h>

#include "march/library.h"
#include "mbist_hardwired/generator.h"
#include "mbist_pfsm/area.h"
#include "mbist_ucode/area.h"
#include "mbist_ucode/rtl.h"
#include "netlist/qm.h"
#include "netlist/verilog.h"

namespace {

using namespace pmbist;
using namespace pmbist::netlist;

TEST(Verilog, Identifiers) {
  EXPECT_EQ(verilog_identifier("March C++"), "march_c");
  EXPECT_EQ(verilog_identifier("last_addr"), "last_addr");
  EXPECT_EQ(verilog_identifier("9lives"), "u9lives");
  EXPECT_EQ(verilog_identifier("a  b"), "a_b");
}

TEST(Verilog, CubeExpressions) {
  const std::vector<std::string> names{"a", "b", "c"};
  EXPECT_EQ(cube_expression(Cube{0b101, 0b111}, names), "a & ~b & c");
  EXPECT_EQ(cube_expression(Cube{0b001, 0b001}, names), "a");
  EXPECT_EQ(cube_expression(Cube{0, 0}, names), "1'b1");
}

TEST(Verilog, CoverExpressions) {
  const std::vector<std::string> names{"a", "b"};
  EXPECT_EQ(cover_expression({}, names), "1'b0");
  EXPECT_EQ(cover_expression({Cube{0b01, 0b01}}, names), "a");
  EXPECT_EQ(cover_expression({Cube{0b01, 0b11}, Cube{0b10, 0b10}}, names),
            "(a & ~b) | b");
}

TEST(Verilog, SopModuleFromMinimizedLogic) {
  // f = majority(a,b,c); emit the minimized cover as a module.
  TruthTable t{3};
  for (std::uint32_t m = 0; m < 8; ++m)
    t.set(m, __builtin_popcount(m) >= 2 ? Tri::One : Tri::Zero);
  const auto minimized = minimize(t);
  const auto text = emit_sop_module("majority3", {"a", "b", "c"},
                                    {{"y", minimized.cover}});
  EXPECT_NE(text.find("module majority3"), std::string::npos);
  EXPECT_NE(text.find("input  wire a"), std::string::npos);
  EXPECT_NE(text.find("assign y ="), std::string::npos);
  EXPECT_NE(text.find("endmodule"), std::string::npos);
  // The minimized majority has exactly 3 two-literal terms.
  EXPECT_EQ(minimized.cover.size(), 3u);
}

TEST(Verilog, FsmCaseArmsMatchStepSemantics) {
  const auto fsm = mbist_hardwired::generate_fsm(
      march::march_c(), {.data_backgrounds = true, .multiport = true});
  const auto arms = fsm_case_arms(fsm);
  ASSERT_EQ(arms.size(), static_cast<std::size_t>(fsm.num_states()));
  const std::uint32_t in_count = 1u << fsm.num_inputs();
  for (const auto& arm : arms) {
    for (std::uint32_t in = 0; in < in_count; ++in) {
      // Replay the emitted if/else chain and compare with the FSM.
      int target = arm.default_target;
      for (std::size_t i = 0; i < arm.conditions.size(); ++i) {
        if (arm.conditions[i].covers(in)) {
          target = arm.targets[i];
          break;
        }
      }
      EXPECT_EQ(target, fsm.step(arm.state, in))
          << "state " << arm.state << " input " << in;
    }
  }
}

TEST(Verilog, HardwiredControllerRtlStructure) {
  const auto fsm = mbist_hardwired::generate_fsm(march::march_c(), {});
  const auto text = emit_fsm_module(fsm, "march_c_bist_ctrl");
  EXPECT_NE(text.find("module march_c_bist_ctrl"), std::string::npos);
  EXPECT_NE(text.find("input  wire clk"), std::string::npos);
  EXPECT_NE(text.find("input  wire last_addr"), std::string::npos);
  EXPECT_NE(text.find("output wire read_en"), std::string::npos);
  EXPECT_NE(text.find("output wire done"), std::string::npos);
  // One localparam per state; March C has 18.
  std::size_t localparams = 0;
  for (std::size_t pos = text.find("localparam"); pos != std::string::npos;
       pos = text.find("localparam", pos + 1))
    ++localparams;
  EXPECT_EQ(localparams, 18u);
  EXPECT_NE(text.find("always @(posedge clk)"), std::string::npos);
  EXPECT_NE(text.find("default: state_next = S_idle;"), std::string::npos);
  // The Done state is terminal: its arm must keep state_next at S_done.
  EXPECT_NE(text.find("S_done: begin"), std::string::npos);
}

TEST(Verilog, MicrocodeDecoderEmitsFromVerifiedCovers) {
  // The microcode instruction decoder's minimized covers (each asserted
  // against decode() during synthesis) emit as one combinational module.
  std::vector<SopOutput> outputs;
  for (const auto& d : mbist_ucode::decoder_covers())
    outputs.push_back({d.name, d.cover});
  ASSERT_EQ(outputs.size(),
            static_cast<std::size_t>(mbist_ucode::kDecodeOutputCount));
  const auto text = emit_sop_module(
      "ucode_decoder", mbist_ucode::decoder_input_names(), outputs);
  EXPECT_NE(text.find("module ucode_decoder"), std::string::npos);
  EXPECT_NE(text.find("assign ic_inc ="), std::string::npos);
  EXPECT_NE(text.find("assign terminate ="), std::string::npos);
  EXPECT_NE(text.find("pause_done"), std::string::npos);

  // Spot-check semantics through the covers: Terminate (flow=7) asserts
  // `terminate` regardless of conditions.
  const auto& covers = mbist_ucode::decoder_covers();
  const auto term = std::find_if(
      covers.begin(), covers.end(),
      [](const auto& d) { return d.name == "terminate"; });
  ASSERT_NE(term, covers.end());
  EXPECT_TRUE(cover_eval(term->cover, 0b111));   // flow=7
  EXPECT_FALSE(cover_eval(term->cover, 0b000));  // flow=0 (Next)
}

TEST(Verilog, PfsmLowerControllerEmits) {
  const auto text = emit_fsm_module(mbist_pfsm::lower_controller_fsm(),
                                    "pfsm_lower_ctrl");
  EXPECT_NE(text.find("module pfsm_lower_ctrl"), std::string::npos);
  EXPECT_NE(text.find("S_rw1"), std::string::npos);
  EXPECT_NE(text.find("S_done"), std::string::npos);
}

TEST(Verilog, MicrocodeTopLevelRtlStructure) {
  const mbist_ucode::RtlConfig cfg{
      .geometry = {.address_bits = 10, .word_bits = 8, .num_ports = 2},
      .storage_depth = 32};
  const auto text = mbist_ucode::emit_controller_rtl(cfg);
  // Both modules present, decoder instantiated in the top level.
  EXPECT_NE(text.find("module ucode_decoder"), std::string::npos);
  EXPECT_NE(text.find("module ucode_bist_top"), std::string::npos);
  EXPECT_NE(text.find("ucode_decoder u_dec"), std::string::npos);
  // Fig. 1 blocks.
  EXPECT_NE(text.find("reg [9:0] storage [0:Z-1];"), std::string::npos);
  EXPECT_NE(text.find("branch_reg"), std::string::npos);
  EXPECT_NE(text.find("repeat_bit, aux_order, aux_data, aux_cmp"),
            std::string::npos);
  EXPECT_NE(text.find("scan_out = storage[Z-1][9]"), std::string::npos);
  // Geometry-derived pieces: 4 backgrounds for 8-bit words, 2 ports.
  EXPECT_NE(text.find("localparam Z = 32;"), std::string::npos);
  EXPECT_NE(text.find("8'haa"), std::string::npos);
  EXPECT_NE(text.find("8'hf0"), std::string::npos);
  EXPECT_NE(text.find("mem_addr"), std::string::npos);
  EXPECT_NE(text.find("assign mem_wdata"), std::string::npos);
  // The register-update transcription markers.
  EXPECT_NE(text.find("mirrors MicrocodeController::step()"),
            std::string::npos);
  EXPECT_NE(text.find("if (d_ic_reset1) ic <= 1;"), std::string::npos);
}

TEST(Verilog, MicrocodeRtlEmitsAcrossGeometries) {
  for (int word : {1, 4, 16}) {
    for (int ports : {1, 2}) {
      const mbist_ucode::RtlConfig cfg{
          .geometry = {.address_bits = 8, .word_bits = word,
                       .num_ports = ports}};
      const auto text = mbist_ucode::emit_controller_rtl(cfg);
      EXPECT_NE(text.find("endmodule"), std::string::npos)
          << word << "x" << ports;
    }
  }
}

TEST(Verilog, EveryLibraryAlgorithmEmits) {
  for (const auto& alg : march::all_algorithms()) {
    const auto fsm = mbist_hardwired::generate_fsm(alg, {});
    const auto text =
        emit_fsm_module(fsm, "bist_" + verilog_identifier(alg.name()));
    EXPECT_NE(text.find("endmodule"), std::string::npos) << alg.name();
    EXPECT_NE(text.find("pause_start"), std::string::npos) << alg.name();
  }
}

}  // namespace
